package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/serve"
)

// fleetSpec is a 2-variable × trials campaign — enough jobs to spread
// over several leases.
func fleetSpec(name string, trials int) campaign.Spec {
	return campaign.Spec{
		Name:      name,
		Seed:      11,
		Missions:  []campaign.MissionSpec{{Kind: "line", Size: 40, Alt: 10}},
		Variables: []string{"PIDR.INTEG", "CMD.Roll"},
		Goals:     []string{campaign.GoalDeviation},
		Defenses:  []string{campaign.DefenseNone},
		Trials:    trials,
		Episodes:  1,
		MaxSteps:  4,
	}
}

// fleetExec is deterministic in job.Seed alone — including a
// deterministic failure slice — so any placement of any job on any
// worker produces the same record bytes.
func fleetExec(_ context.Context, job campaign.Job) (campaign.Metrics, error) {
	if job.Seed%5 == 0 {
		return campaign.Metrics{}, fmt.Errorf("synthetic fault for seed %d", job.Seed)
	}
	return campaign.Metrics{
		Deviation: float64(job.Seed%1000) / 16,
		Return:    float64(job.Seed % 37),
		Detected:  job.Seed%3 == 0,
		Success:   job.Seed%3 != 0,
	}, nil
}

// localRun executes the spec on a plain single-node runner and returns
// the canonical sorted artifact plus the aggregate summary — the baseline
// every fleet topology must reproduce byte for byte.
func localRun(t testing.TB, spec campaign.Spec) ([]byte, *campaign.Summary, []campaign.Record) {
	t.Helper()
	store, err := campaign.OpenStore(t.TempDir() + "/local.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := &campaign.Runner{Workers: 2, Execute: fleetExec}
	if _, err := r.Run(context.Background(), spec, store); err != nil {
		t.Fatal(err)
	}
	sorted, err := campaign.SortedBytes(store.Records())
	if err != nil {
		t.Fatal(err)
	}
	return sorted, campaign.Aggregate(spec.Name, store.Records()), store.Records()
}

func submitHTTP(t *testing.T, url string, spec campaign.Spec) (serve.JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// waitTerminal polls a campaign until it reaches done or failed.
func waitTerminal(t *testing.T, url, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == serve.StateDone || st.State == serve.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q (err %q)", id, st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runFleet executes spec on an in-process fleet of n workers and returns
// the sorted artifact, the aggregate summary and the coordinator's
// metrics registry. With killOne, worker w0 is started first and dies
// mid-lease without streaming a record, so the campaign can only finish
// via lease expiry + work stealing.
func runFleet(t *testing.T, spec campaign.Spec, n int, killOne bool) ([]byte, *campaign.Summary, *metrics.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	c, err := NewCoordinator(CoordConfig{
		StoreDir: dir,
		LeaseTTL: 250 * time.Millisecond,
		MaxLease: 2,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	ts := httptest.NewServer(c.Handler())

	st, code := submitHTTP(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	start := 0
	if killOne {
		killCtx, kill := context.WithCancel(ctx)
		w0, err := NewWorker(WorkerConfig{
			Coordinator: ts.URL, ID: "w0", Jobs: 1, FlushEvery: 100,
			Execute: func(jctx context.Context, _ campaign.Job) (campaign.Metrics, error) {
				kill() // die mid-lease, record unstreamed
				<-jctx.Done()
				return campaign.Metrics{}, jctx.Err()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = w0.Run(killCtx) }()
		<-killCtx.Done() // w0 holds a lease and is now dead
		start = 1
	}
	for i := start; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator: ts.URL, ID: fmt.Sprintf("w%d", i), Jobs: 2, FlushEvery: 2,
			Execute: fleetExec,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); _ = w.Run(ctx) }()
	}

	final := waitTerminal(t, ts.URL, st.ID)
	cancel()
	wg.Wait()

	var res serve.Result
	resp, err := http.Get(ts.URL + "/v1/results/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result = (%d, %v) for terminal state %q", resp.StatusCode, err, final.State)
	}

	if err := c.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	sorted, err := os.ReadFile(SortedArtifactPath(dir, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	return sorted, res.Summary, reg
}

// TestFleetEquivalence is the acceptance contract: the same spec run
// locally, on a 1-worker fleet, and on a 3-worker fleet with one worker
// killed mid-run (forcing lease expiry and work stealing) produces
// byte-identical sorted artifacts and identical aggregate summaries.
func TestFleetEquivalence(t *testing.T) {
	spec := fleetSpec("fleet-eq", 4)
	wantSorted, wantSum, _ := localRun(t, spec)
	if len(wantSorted) == 0 {
		t.Fatal("local baseline produced no artifact")
	}
	wantSumJSON, err := json.Marshal(wantSum)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		workers int
		kill    bool
	}{
		{"one-worker", 1, false},
		{"three-workers-one-killed", 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sorted, sum, reg := runFleet(t, spec, tc.workers, tc.kill)
			if !bytes.Equal(sorted, wantSorted) {
				t.Errorf("sorted artifact diverges from local run:\nfleet:\n%slocal:\n%s", sorted, wantSorted)
			}
			sumJSON, err := json.Marshal(sum)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sumJSON, wantSumJSON) {
				t.Errorf("summary diverges:\nfleet: %s\nlocal: %s", sumJSON, wantSumJSON)
			}
			merged := reg.Counter("ares_dist_records_merged_total", "").Value()
			if want := uint64(len(spec.Expand())); merged != want {
				t.Errorf("records merged = %d, want %d (no double-merge)", merged, want)
			}
			if tc.kill {
				if got := reg.Counter("ares_dist_leases_expired_total", "").Value(); got == 0 {
					t.Error("killed worker's lease never expired")
				}
				if got := reg.Counter("ares_dist_steal_events_total", "").Value(); got == 0 {
					t.Error("no steal events despite a killed worker")
				}
			}
		})
	}
}

// TestDrainWithActiveLease is the drain-race regression: a lease still
// held at SIGTERM must land its unfinished jobs in the queue manifest as
// pending — not dropped — and a fresh coordinator over the same store
// must re-lease exactly the unmerged remainder.
func TestDrainWithActiveLease(t *testing.T) {
	dir := t.TempDir()
	spec := fleetSpec("drain-race", 2)
	_, _, recs := localRun(t, spec)
	recFor := make(map[string]campaign.Record, len(recs))
	for _, r := range recs {
		recFor[r.Key] = r
	}

	c, err := NewCoordinator(CoordConfig{
		StoreDir: dir, LeaseTTL: time.Hour, MaxLease: 64, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st, code := c.Submit(spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	grant, err := c.Lease(LeaseRequest{Worker: "w0", Max: 64})
	if err != nil || grant.Lease == "" {
		t.Fatalf("lease = (%+v, %v), want a grant", grant, err)
	}
	total := len(spec.Expand())
	if len(grant.Keys) != total {
		t.Fatalf("lease granted %d keys, want all %d", len(grant.Keys), total)
	}
	// One record streams before the SIGTERM; the rest of the lease is
	// still active when the coordinator drains.
	first := grant.Keys[0]
	if _, _, err := c.MergeRecords(RecordsRequest{
		Worker: "w0", Lease: grant.Lease, Offset: 0,
		Records: []campaign.Record{recFor[first]},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if hb := c.Heartbeat(HeartbeatRequest{Worker: "w0", Lease: grant.Lease}); !hb.Abandon {
		t.Error("post-drain heartbeat did not order abandon")
	}

	man, err := serve.LoadManifest(serve.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(man) != 1 || man[0].ID != st.ID {
		t.Fatalf("manifest = %+v, want the drained campaign %s pending", man, st.ID)
	}

	// Life 2: the unfinished remainder — and nothing more — is pending.
	c2, err := NewCoordinator(CoordConfig{
		StoreDir: dir, LeaseTTL: time.Hour, MaxLease: 64, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Shutdown()
	g2, err := c2.Lease(LeaseRequest{Worker: "w1", Max: 64})
	if err != nil || g2.Campaign != st.ID {
		t.Fatalf("life-2 lease = (%+v, %v)", g2, err)
	}
	if len(g2.Keys) != total-1 {
		t.Fatalf("life-2 pending = %d keys, want %d (drained lease released, merged record kept)",
			len(g2.Keys), total-1)
	}
	batch := make([]campaign.Record, 0, len(g2.Keys))
	for _, k := range g2.Keys {
		batch = append(batch, recFor[k])
	}
	if _, _, err := c2.MergeRecords(RecordsRequest{
		Worker: "w1", Lease: g2.Lease, Offset: 0, Records: batch,
	}); err != nil {
		t.Fatal(err)
	}
	c2.Complete(CompleteRequest{Worker: "w1", Lease: g2.Lease})
	st2, ok := c2.Status(st.ID)
	if !ok || (st2.State != serve.StateDone && st2.State != serve.StateFailed) {
		t.Fatalf("life-2 state = %+v, want terminal", st2)
	}
	man2, err := serve.LoadManifest(serve.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(man2) != 0 {
		t.Fatalf("finished campaign still in manifest: %+v", man2)
	}
}

// TestMergeOrderInvariance is the property test: record arrival order
// shuffled across N simulated workers — interleaved leases, random batch
// splits, occasional duplicate retries — merges to a store byte-identical
// to the sequential local artifact.
func TestMergeOrderInvariance(t *testing.T) {
	spec := fleetSpec("merge-order", 3)
	wantSorted, _, recs := localRun(t, spec)
	recFor := make(map[string]campaign.Record, len(recs))
	for _, r := range recs {
		recFor[r.Key] = r
	}

	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("shuffle-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			c, err := NewCoordinator(CoordConfig{
				StoreDir: dir, LeaseTTL: time.Hour, MaxLease: 3, Metrics: metrics.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Shutdown()
			st, _ := c.Submit(spec)

			// Lease everything out across 3 simulated workers.
			type held struct {
				worker, lease string
				keys          []string
				sent          int
			}
			var grants []*held
			for {
				worker := fmt.Sprintf("sim%d", rng.Intn(3))
				g, err := c.Lease(LeaseRequest{Worker: worker})
				if err != nil {
					t.Fatal(err)
				}
				if g.Lease == "" {
					break
				}
				grants = append(grants, &held{worker: worker, lease: g.Lease, keys: g.Keys})
			}

			// Deliver in shuffled interleavings, batch sizes 1..3, with a
			// 1-in-3 chance of resending the previous record (a retry the
			// offset protocol must dedup).
			for live := len(grants); live > 0; {
				g := grants[rng.Intn(len(grants))]
				if g.sent == len(g.keys) {
					continue
				}
				off := g.sent
				if off > 0 && rng.Intn(3) == 0 {
					off-- // retry overlap
				}
				end := g.sent + 1 + rng.Intn(3)
				if end > len(g.keys) {
					end = len(g.keys)
				}
				batch := make([]campaign.Record, 0, end-off)
				for _, k := range g.keys[off:end] {
					batch = append(batch, recFor[k])
				}
				resp, _, err := c.MergeRecords(RecordsRequest{
					Worker: g.worker, Lease: g.lease, Offset: off, Records: batch,
				})
				if err != nil {
					t.Fatal(err)
				}
				if resp.Next != end {
					t.Fatalf("acked %d, want %d", resp.Next, end)
				}
				g.sent = end
				if g.sent == len(g.keys) {
					if ok := c.Complete(CompleteRequest{Worker: g.worker, Lease: g.lease}); !ok.OK {
						t.Fatalf("complete refused for %s", g.lease)
					}
					live--
				}
			}

			sorted, err := os.ReadFile(SortedArtifactPath(dir, st.ID))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sorted, wantSorted) {
				t.Errorf("shuffled merge diverges from sequential artifact:\n%s\nvs\n%s", sorted, wantSorted)
			}
		})
	}
}

// TestWireStrictness pins the decode gate: unknown fields, trailing data,
// oversize bodies and malformed worker IDs are refused.
func TestWireStrictness(t *testing.T) {
	if _, err := decodeWire[RegisterRequest](strings.NewReader(`{"worker":"a","extra":1}`), maxControlBytes); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := decodeWire[RegisterRequest](strings.NewReader(`{"worker":"a"} {"worker":"b"}`), maxControlBytes); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := decodeWire[RegisterRequest](strings.NewReader(`{"worker":"a"}`), 4); err == nil {
		t.Error("oversize body accepted")
	}
	if _, err := decodeWire[RegisterRequest](strings.NewReader(`{"worker":"ok-1"}`), maxControlBytes); err != nil {
		t.Errorf("valid envelope refused: %v", err)
	}
	for _, id := range []string{"", "has space", "has/slash", "tab\tid", strings.Repeat("x", 129), "ctl\x01"} {
		if validWorkerID(id) == nil {
			t.Errorf("worker id %q accepted", id)
		}
	}
	if err := validWorkerID("bench-host-42"); err != nil {
		t.Errorf("valid worker id refused: %v", err)
	}
}

// TestShardStability pins shard arithmetic: deterministic, in-range, and
// only a function of (campaign, key, n).
func TestShardStability(t *testing.T) {
	counts := make(map[int]int)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("m0/v%d/t%02d", i%4, i)
		s := shardOf("abc123", k, 3)
		if s < 0 || s >= 3 {
			t.Fatalf("shardOf out of range: %d", s)
		}
		if s2 := shardOf("abc123", k, 3); s2 != s {
			t.Fatalf("shardOf not deterministic: %d vs %d", s, s2)
		}
		counts[s]++
	}
	if len(counts) != 3 {
		t.Errorf("64 keys landed on %d of 3 shards: %v", len(counts), counts)
	}
	if shardOf("abc123", "k", 1) != 0 || shardOf("abc123", "k", 0) != 0 {
		t.Error("degenerate fleet sizes must map to shard 0")
	}
}
