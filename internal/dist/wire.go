package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/ares-cps/ares/internal/campaign"
)

// Wire envelopes of the worker↔coordinator protocol. Every message is a
// small JSON document decoded strictly on both ends: unknown fields,
// trailing bytes and oversized bodies are errors, mirroring the spec
// submission surface (serve.DecodeSpec). Record batches reuse
// campaign.Record verbatim, so the bytes a worker streams are the bytes
// the coordinator's store would have written locally.

// Wire size caps. Control messages are tiny; a lease response carries at
// most a few hundred job keys; a record batch carries FlushEvery records
// plus slack for error strings.
const (
	maxControlBytes  = 64 << 10
	maxLeaseBytes    = 1 << 20
	maxRecordsBytes  = 4 << 20
	maxWorkerIDBytes = 128
)

// RegisterRequest announces a worker to the coordinator. Registration is
// idempotent: re-registering after a worker restart refreshes its entry.
type RegisterRequest struct {
	// Worker is the worker's stable identity; it shards the job space, so
	// a restarted worker with the same ID leases the same shard.
	Worker string `json:"worker"`
}

// RegisterResponse assigns the fleet's timing contract.
type RegisterResponse struct {
	Worker string `json:"worker"`
	// LeaseTTLMillis is how long a granted lease lives without a
	// heartbeat before its jobs are re-leased to other workers.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// HeartbeatMillis is the interval the worker must heartbeat at.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for a batch of jobs.
type LeaseRequest struct {
	Worker string `json:"worker"`
	// Max bounds the batch size (0 = coordinator default).
	Max int `json:"max,omitempty"`
}

// LeaseResponse grants a batch, or — with an empty Lease — tells the
// worker to retry after RetryMillis (no pending work right now).
type LeaseResponse struct {
	Lease    string `json:"lease,omitempty"`
	Campaign string `json:"campaign,omitempty"`
	// Keys names the leased jobs. The worker expands the campaign's spec
	// locally (fetched once per campaign) and maps keys back to jobs, so
	// the wire carries identities, not job bodies — determinism makes the
	// worker-side expansion bit-identical to the coordinator's.
	Keys        []string `json:"keys,omitempty"`
	RetryMillis int64    `json:"retry_ms,omitempty"`
}

// HeartbeatRequest keeps a lease alive.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse acknowledges, or orders the worker to abandon a lease
// it no longer owns (expired and possibly re-leased elsewhere).
type HeartbeatResponse struct {
	OK      bool `json:"ok"`
	Abandon bool `json:"abandon,omitempty"`
}

// RecordsRequest streams a batch of finished records. Offset is the
// position of the batch's first record in the lease's record stream: the
// coordinator acknowledges with the next expected offset, so a worker
// that retries a failed POST resends the same offset and duplicates are
// dropped instead of double-merged.
type RecordsRequest struct {
	Worker  string            `json:"worker"`
	Lease   string            `json:"lease"`
	Offset  int               `json:"offset"`
	Records []campaign.Record `json:"records"`
}

// RecordsResponse acknowledges the stream position.
type RecordsResponse struct {
	Next int `json:"next"`
}

// CompleteRequest reports a lease fully executed and streamed.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// CompleteResponse acknowledges lease completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
}

// decodeWire strictly parses one JSON envelope: at most limit bytes, no
// unknown fields, no trailing data. It is the dist counterpart of
// serve.DecodeSpec and the surface FuzzDistEnvelope drives.
func decodeWire[T any](r io.Reader, limit int64) (T, error) {
	var v T
	err := decodeWireInto(r, limit, &v)
	return v, err
}

// decodeWireInto is decodeWire for a caller-supplied destination (the
// worker's response decoder, where the target type is chosen at runtime).
func decodeWireInto(r io.Reader, limit int64, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return err
	}
	if int64(len(data)) > limit {
		return fmt.Errorf("dist: message exceeds %d bytes", limit)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("dist: trailing data after message")
	}
	return nil
}

// validWorkerID vets a worker identity: non-empty, bounded, and free of
// separators and control characters (IDs appear in job-key shard hashes,
// log lines and URLs).
func validWorkerID(id string) error {
	if id == "" {
		return fmt.Errorf("dist: empty worker id")
	}
	if len(id) > maxWorkerIDBytes {
		return fmt.Errorf("dist: worker id longer than %d bytes", maxWorkerIDBytes)
	}
	if strings.ContainsAny(id, "/ \t\r\n") {
		return fmt.Errorf("dist: worker id %q contains separators or whitespace", id)
	}
	for _, r := range id {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("dist: worker id contains control characters")
		}
	}
	return nil
}
