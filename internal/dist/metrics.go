package dist

import "github.com/ares-cps/ares/internal/metrics"

// distMetrics are the coordinator's fleet instruments, in the ares_dist_*
// namespace next to the serve and campaign families.
type distMetrics struct {
	workersRegistered *metrics.Gauge
	leasesActive      *metrics.Gauge
	leasesGranted     *metrics.Counter
	leasesExpired     *metrics.Counter
	recordsMerged     *metrics.Counter
	steals            *metrics.Counter
	campaignsDone     *metrics.Counter
	campaignsFailed   *metrics.Counter
}

func newDistMetrics(r *metrics.Registry) distMetrics {
	return distMetrics{
		workersRegistered: r.Gauge("ares_dist_workers_registered", "workers currently registered with the coordinator"),
		leasesActive:      r.Gauge("ares_dist_leases_active", "job leases currently held by workers"),
		leasesGranted:     r.Counter("ares_dist_leases_granted_total", "job leases granted to workers"),
		leasesExpired:     r.Counter("ares_dist_leases_expired_total", "leases reclaimed after missing heartbeats"),
		recordsMerged:     r.Counter("ares_dist_records_merged_total", "worker records merged into campaign stores"),
		steals:            r.Counter("ares_dist_steal_events_total", "jobs from expired leases re-leased to another worker"),
		campaignsDone:     r.Counter("ares_dist_campaigns_completed_total", "campaigns fully merged without failures"),
		campaignsFailed:   r.Counter("ares_dist_campaigns_failed_total", "campaigns fully merged with failed cells"),
	}
}
