package dist

import (
	"hash/fnv"
	"io"
)

// shardOf maps one job of one campaign onto a shard in [0, n). The shard
// key derives from the campaign's content-addressed identity — the
// serve.SpecHash hex that names the campaign — concatenated with the job
// key and hashed with FNV-1a (the same hash family job seeds stream
// from), so a job's preferred owner is a pure function of spec identity
// and fleet size: every coordinator life, and every worker doing the
// same arithmetic, computes the same placement.
func shardOf(campaignID, key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, campaignID)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, key)
	return int(h.Sum64() % uint64(n))
}
