// Package dist shards campaign execution across a fleet of worker
// daemons while preserving the byte-identical artifacts a single node
// produces.
//
// One aresd runs as the coordinator: it accepts campaign specs on the
// same content-addressed submission surface as internal/serve, expands
// each spec into its job list, and hands jobs out to registered workers
// in leased batches. Workers execute their leases through the ordinary
// campaign.Runner (batched executor included) and stream finished
// records back with resumable offsets; the coordinator merges them into
// per-campaign slots — one slot per expanded job — and, when every slot
// is filled, finalizes the same key-sorted JSONL store and aggregate
// summary a local run would have written.
//
// The fleet protocol is lease + heartbeat + work stealing: a lease that
// misses its heartbeats expires, its unfinished jobs return to the
// pending set, and the next worker to ask re-leases them (a steal). A
// coordinator drain expires every outstanding lease first, so jobs held
// by workers at SIGTERM are persisted to the queue manifest as pending
// rather than dropped. Cross-node bit-identity is a testable contract,
// not an aspiration, because nothing about a record depends on where it
// ran: job seeds derive from the spec (mathx.DeriveSeed streams), slot
// placement derives from the job key, and the final artifact is the
// canonical campaign.SortedBytes encoding.
package dist

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/serve"
)

// CoordConfig parameterizes a Coordinator.
type CoordConfig struct {
	// StoreDir holds one campaign artifact file per submitted spec, the
	// finalized sorted artifacts, and the queue manifest. Required.
	StoreDir string
	// LeaseTTL is how long a lease lives without a heartbeat before its
	// jobs are re-leased. Default 30s.
	LeaseTTL time.Duration
	// MaxLease bounds the jobs granted per lease. Default 8.
	MaxLease int
	// Metrics receives the ares_dist_* instruments; nil uses
	// metrics.Default().
	Metrics *metrics.Registry
	// Log receives coordinator log lines; nil discards.
	Log io.Writer
}

func (c *CoordConfig) applyDefaults() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxLease <= 0 {
		c.MaxLease = 8
	}
	if c.Metrics == nil {
		c.Metrics = metrics.Default()
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
}

// campaignState is one submitted spec's merge progress.
type campaignState struct {
	id   string
	spec campaign.Spec
	// jobs is the deterministic expansion; index maps key → slot; slots
	// fill with merged records in whatever order workers deliver them.
	jobs  []campaign.Job
	index map[string]int
	slots []*campaign.Record
	// pending holds keys not yet leased or merged; leasedBy tracks which
	// lease currently owns a key; reclaimed marks keys returned by an
	// expired lease, so re-granting them counts as a steal.
	pending   map[string]bool
	leasedBy  map[string]string
	reclaimed map[string]bool
	merged    int
	state     string
	errMsg    string
	summary   *campaign.Summary
	store     *campaign.Store
}

// lease is one granted job batch.
type lease struct {
	id, worker, campaign string
	keys                 []string
	// remaining holds leased keys whose record has not arrived yet.
	remaining map[string]bool
	// next is the next expected record-stream offset (resumable upload).
	next    int
	expires time.Time
}

// Coordinator is the fleet head node. Construct with NewCoordinator,
// mount Handler in an http.Server, call Start, and Shutdown on the way
// out.
type Coordinator struct {
	cfg CoordConfig
	mx  distMetrics

	mu        sync.Mutex
	campaigns map[string]*campaignState
	workers   map[string]bool
	leases    map[string]*lease
	leaseSeq  int
	draining  bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator builds a Coordinator, creating StoreDir if needed and
// restoring every unfinished campaign found in its queue manifest — the
// same manifest format internal/serve writes, so a single-node store
// directory can be adopted by a fleet and vice versa.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.StoreDir == "" {
		return nil, errors.New("dist: CoordConfig.StoreDir is required")
	}
	cfg.applyDefaults()
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		mx:        newDistMetrics(cfg.Metrics),
		campaigns: make(map[string]*campaignState),
		workers:   make(map[string]bool),
		leases:    make(map[string]*lease),
		stop:      make(chan struct{}),
	}
	pending, err := serve.LoadManifest(serve.ManifestPath(cfg.StoreDir))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, mj := range pending {
		if _, err := c.restoreLocked(mj.ID, mj.Spec); err != nil {
			return nil, err
		}
	}
	if len(pending) > 0 {
		fmt.Fprintf(cfg.Log, "dist: resumed %d campaign(s) from manifest\n", len(pending))
	}
	return c, nil
}

// Start launches the lease reaper, which reclaims expired leases even
// when no worker traffic arrives to trigger a lazy reap.
func (c *Coordinator) Start() {
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.mu.Lock()
				c.reapLocked(time.Now())
				c.mu.Unlock()
			}
		}
	}()
}

// Shutdown drains the coordinator: submissions and lease grants are
// refused, every outstanding lease is expired so its unfinished jobs
// land back in the pending set, the set of unfinished campaigns is
// persisted to the queue manifest for the next coordinator life, and the
// campaign stores are closed. Records already merged are on disk, so a
// restarted coordinator resumes each campaign mid-merge.
func (c *Coordinator) Shutdown() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	// The drain-with-active-lease contract: a lease still held (or
	// expiring right now) at SIGTERM must not strand its jobs — they
	// return to pending before the manifest snapshot, so the next life
	// re-leases them instead of waiting for records that will never come.
	for id, l := range c.leases {
		c.releaseLeaseLocked(l, false)
		delete(c.leases, id)
	}
	c.mx.leasesActive.Set(0)
	err := c.persistManifestLocked()
	for _, cs := range c.campaigns {
		if cs.store != nil {
			if cerr := cs.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
			cs.store = nil
		}
	}
	return err
}

// Register adds (or refreshes) a worker and returns the fleet's timing
// contract. Idempotent, and also invoked implicitly by Lease so a worker
// that outlives a coordinator restart re-registers on its next ask.
func (c *Coordinator) Register(workerID string) (RegisterResponse, error) {
	if err := validWorkerID(workerID); err != nil {
		return RegisterResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(workerID)
	return RegisterResponse{
		Worker:          workerID,
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: (c.cfg.LeaseTTL / 3).Milliseconds(),
	}, nil
}

func (c *Coordinator) registerLocked(workerID string) {
	if !c.workers[workerID] {
		c.workers[workerID] = true
		c.mx.workersRegistered.Set(int64(len(c.workers)))
		fmt.Fprintf(c.cfg.Log, "dist: worker %s registered (%d total)\n", workerID, len(c.workers))
	}
}

// Lease grants the worker a batch of pending jobs, preferring jobs whose
// shard the worker owns and falling back to any pending job (cross-shard
// pull) so stragglers cannot stall a campaign. An empty-Lease response
// tells the worker to retry later.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if err := validWorkerID(req.Worker); err != nil {
		return LeaseResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	idle := LeaseResponse{RetryMillis: (c.cfg.LeaseTTL / 4).Milliseconds()}
	if c.draining {
		return idle, nil
	}
	c.registerLocked(req.Worker)
	c.reapLocked(time.Now())

	max := req.Max
	if max <= 0 || max > c.cfg.MaxLease {
		max = c.cfg.MaxLease
	}
	cs, keys := c.pickJobsLocked(req.Worker, max)
	if cs == nil {
		return idle, nil
	}
	c.leaseSeq++
	l := &lease{
		id:        fmt.Sprintf("L%06d", c.leaseSeq),
		worker:    req.Worker,
		campaign:  cs.id,
		keys:      keys,
		remaining: make(map[string]bool, len(keys)),
		expires:   time.Now().Add(c.cfg.LeaseTTL),
	}
	for _, k := range keys {
		delete(cs.pending, k)
		cs.leasedBy[k] = l.id
		l.remaining[k] = true
		if cs.reclaimed[k] {
			delete(cs.reclaimed, k)
			c.mx.steals.Inc()
		}
	}
	cs.state = serve.StateRunning
	c.leases[l.id] = l
	c.mx.leasesGranted.Inc()
	c.mx.leasesActive.Set(int64(len(c.leases)))
	fmt.Fprintf(c.cfg.Log, "dist: lease %s → %s: %d job(s) of %s\n", l.id, req.Worker, len(keys), cs.id)
	return LeaseResponse{Lease: l.id, Campaign: cs.id, Keys: keys}, nil
}

// pickJobsLocked chooses up to max pending jobs for a worker: campaigns
// in sorted-ID order, the worker's own shard first (in expansion order,
// so batchable cells stay contiguous), then anything pending.
func (c *Coordinator) pickJobsLocked(workerID string, max int) (*campaignState, []string) {
	widx, n := c.workerShardLocked(workerID)
	for _, id := range c.campaignIDsLocked() {
		cs := c.campaigns[id]
		if cs.state != serve.StateQueued && cs.state != serve.StateRunning {
			continue
		}
		if len(cs.pending) == 0 {
			continue
		}
		var own, any []string
		for _, j := range cs.jobs {
			if !cs.pending[j.Key] {
				continue
			}
			if shardOf(cs.id, j.Key, n) == widx {
				if len(own) < max {
					own = append(own, j.Key)
				}
			} else if len(any) < max {
				any = append(any, j.Key)
			}
		}
		if len(own) > 0 {
			return cs, own
		}
		return cs, any
	}
	return nil, nil
}

// workerShardLocked returns the worker's index in the sorted registry and
// the registry size.
func (c *Coordinator) workerShardLocked(workerID string) (idx, n int) {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for i, id := range ids {
		if id == workerID {
			return i, len(ids)
		}
	}
	return 0, len(ids)
}

func (c *Coordinator) campaignIDsLocked() []string {
	ids := make([]string, 0, len(c.campaigns))
	for id := range c.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Heartbeat extends a live lease; a worker whose lease has expired (or
// was never granted) is told to abandon it.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(time.Now())
	l, ok := c.leases[req.Lease]
	if !ok || l.worker != req.Worker || c.draining {
		return HeartbeatResponse{Abandon: true}
	}
	l.expires = time.Now().Add(c.cfg.LeaseTTL)
	return HeartbeatResponse{OK: true}
}

// MergeRecords ingests one record batch from a lease's resumable stream.
// A batch whose offset lags the acknowledged position is a retry — the
// overlap is dropped; an offset beyond it is a protocol error.
func (c *Coordinator) MergeRecords(req RecordsRequest) (RecordsResponse, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(time.Now())
	l, ok := c.leases[req.Lease]
	if !ok || l.worker != req.Worker {
		return RecordsResponse{}, http.StatusNotFound, fmt.Errorf("dist: unknown lease %q", req.Lease)
	}
	if req.Offset < 0 || req.Offset > l.next {
		return RecordsResponse{}, http.StatusConflict,
			fmt.Errorf("dist: lease %s offset %d, expected ≤ %d", req.Lease, req.Offset, l.next)
	}
	cs := c.campaigns[l.campaign]
	skip := l.next - req.Offset
	for i, rec := range req.Records {
		if i < skip {
			continue
		}
		if err := c.mergeLocked(cs, l, rec); err != nil {
			return RecordsResponse{}, http.StatusBadRequest, err
		}
		l.next++
	}
	return RecordsResponse{Next: l.next}, http.StatusOK, nil
}

// mergeLocked slots one record. Duplicate deliveries (a slot already
// filled by an earlier lease of the same job) are dropped: job records
// are deterministic in the spec, so first-wins and last-wins are the
// same bytes.
func (c *Coordinator) mergeLocked(cs *campaignState, l *lease, rec campaign.Record) error {
	i, ok := cs.index[rec.Key]
	if !ok {
		return fmt.Errorf("dist: record for unknown job key %q", rec.Key)
	}
	if !l.remaining[rec.Key] {
		// Not part of this lease (or already delivered by it): a protocol
		// violation unless it is a benign duplicate of a filled slot.
		if cs.slots[i] != nil {
			return nil
		}
		return fmt.Errorf("dist: record for key %q outside lease %s", rec.Key, l.id)
	}
	delete(l.remaining, rec.Key)
	if cs.slots[i] != nil {
		return nil
	}
	if err := cs.store.Append(rec); err != nil {
		return err
	}
	r := rec
	cs.slots[i] = &r
	cs.merged++
	delete(cs.pending, rec.Key)
	delete(cs.leasedBy, rec.Key)
	c.mx.recordsMerged.Inc()
	if cs.merged == len(cs.jobs) {
		c.finalizeLocked(cs)
	}
	return nil
}

// Complete retires a fully-streamed lease. Leased-but-undelivered keys
// (a worker bug, or records rejected mid-batch) return to pending.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.Lease]
	if !ok || l.worker != req.Worker {
		return CompleteResponse{OK: false}
	}
	c.releaseLeaseLocked(l, false)
	delete(c.leases, req.Lease)
	c.mx.leasesActive.Set(int64(len(c.leases)))
	return CompleteResponse{OK: true}
}

// reapLocked expires overdue leases: their unfinished jobs return to the
// pending set marked reclaimed, so the next grant counts them as stolen.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		c.mx.leasesExpired.Inc()
		fmt.Fprintf(c.cfg.Log, "dist: lease %s (%s) expired with %d job(s) unfinished\n",
			id, l.worker, len(l.remaining))
		c.releaseLeaseLocked(l, true)
		delete(c.leases, id)
	}
	c.mx.leasesActive.Set(int64(len(c.leases)))
}

// releaseLeaseLocked returns a lease's unfinished jobs to pending;
// reclaimed marks them as steal candidates (lease expiry) or not
// (coordinator drain, worker-reported completion).
func (c *Coordinator) releaseLeaseLocked(l *lease, reclaimed bool) {
	cs, ok := c.campaigns[l.campaign]
	if !ok {
		return
	}
	for k := range l.remaining {
		if cs.leasedBy[k] != l.id {
			continue
		}
		delete(cs.leasedBy, k)
		if i := cs.index[k]; cs.slots[i] == nil {
			cs.pending[k] = true
			if reclaimed {
				cs.reclaimed[k] = true
			}
		}
	}
}

// finalizeLocked closes out a fully-merged campaign: the canonical
// key-sorted artifact is written next to the arrival-order store, the
// aggregate summary is computed, and the campaign leaves the manifest.
func (c *Coordinator) finalizeLocked(cs *campaignState) {
	recs := make([]campaign.Record, 0, len(cs.slots))
	failures := 0
	for _, r := range cs.slots {
		recs = append(recs, *r)
		if r.Status != campaign.StatusOK {
			failures++
		}
	}
	sorted, err := campaign.SortedBytes(recs)
	if err == nil {
		err = campaign.WriteFileAtomic(SortedArtifactPath(c.cfg.StoreDir, cs.id), sorted, 0o644)
	}
	if err != nil {
		cs.state = serve.StateFailed
		cs.errMsg = err.Error()
		c.mx.campaignsFailed.Inc()
		fmt.Fprintf(c.cfg.Log, "dist: campaign %s finalize: %v\n", cs.id, err)
		return
	}
	cs.summary = campaign.Aggregate(summaryName(cs.spec), recs)
	if failures > 0 {
		cs.state = serve.StateFailed
		cs.errMsg = fmt.Sprintf("%d of %d campaign cells failed", failures, len(cs.jobs))
		c.mx.campaignsFailed.Inc()
	} else {
		cs.state = serve.StateDone
		c.mx.campaignsDone.Inc()
	}
	if err := c.persistManifestLocked(); err != nil {
		fmt.Fprintf(c.cfg.Log, "dist: persist manifest: %v\n", err)
	}
	fmt.Fprintf(c.cfg.Log, "dist: campaign %s %s (%d records)\n", cs.id, cs.state, len(recs))
}

// Submit routes one decoded spec: dedup onto an in-flight campaign,
// answer from a finished one, retry a failed one, or adopt/create a
// store. The int is the HTTP status the handler answers with.
func (c *Coordinator) Submit(spec campaign.Spec) (serve.JobStatus, int) {
	id := serve.SpecHash(spec)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return serve.JobStatus{}, http.StatusServiceUnavailable
	}
	cs, ok := c.campaigns[id]
	if !ok {
		var err error
		if cs, err = c.restoreLocked(id, spec); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: campaign %s: %v\n", id, err)
			return serve.JobStatus{}, http.StatusInternalServerError
		}
		if err := c.persistManifestLocked(); err != nil {
			fmt.Fprintf(c.cfg.Log, "dist: persist manifest: %v\n", err)
		}
	}
	switch cs.state {
	case serve.StateDone:
		return c.statusLocked(cs), http.StatusOK
	case serve.StateFailed:
		c.retryLocked(cs)
		return c.statusLocked(cs), http.StatusAccepted
	default:
		return c.statusLocked(cs), http.StatusAccepted
	}
}

// restoreLocked builds a campaign's merge state over its (possibly
// pre-existing) store: slots prefill from completed records — only ok
// records count, so failed cells re-run, exactly like a local resume —
// and a store that already holds every record finalizes immediately.
func (c *Coordinator) restoreLocked(id string, spec campaign.Spec) (*campaignState, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	store, err := campaign.OpenStore(c.storePath(id))
	if err != nil {
		return nil, err
	}
	jobs := spec.Expand()
	cs := &campaignState{
		id:        id,
		spec:      spec,
		jobs:      jobs,
		index:     make(map[string]int, len(jobs)),
		slots:     make([]*campaign.Record, len(jobs)),
		pending:   make(map[string]bool, len(jobs)),
		leasedBy:  make(map[string]string),
		reclaimed: make(map[string]bool),
		state:     serve.StateQueued,
		store:     store,
	}
	for i, j := range jobs {
		cs.index[j.Key] = i
	}
	// Last record per key wins (a failed cell retried on a previous
	// life); only ok records prefill.
	for _, rec := range store.Records() {
		i, ok := cs.index[rec.Key]
		if !ok || rec.Status != campaign.StatusOK {
			continue
		}
		if cs.slots[i] == nil {
			cs.merged++
		}
		r := rec
		cs.slots[i] = &r
	}
	for _, j := range jobs {
		if cs.slots[cs.index[j.Key]] == nil {
			cs.pending[j.Key] = true
		}
	}
	c.campaigns[id] = cs
	if cs.merged == len(cs.jobs) && len(cs.jobs) > 0 {
		c.finalizeLocked(cs)
	}
	return cs, nil
}

// retryLocked re-opens a failed campaign: cells whose record is not ok
// return to pending, mirroring what resubmitting a failed spec does on a
// single node.
func (c *Coordinator) retryLocked(cs *campaignState) {
	for i, r := range cs.slots {
		if r == nil || r.Status == campaign.StatusOK {
			continue
		}
		cs.slots[i] = nil
		cs.merged--
		cs.pending[cs.jobs[i].Key] = true
	}
	cs.state = serve.StateQueued
	cs.errMsg = ""
	cs.summary = nil
	if err := c.persistManifestLocked(); err != nil {
		fmt.Fprintf(c.cfg.Log, "dist: persist manifest: %v\n", err)
	}
}

// Status returns the wire status of one campaign.
func (c *Coordinator) Status(id string) (serve.JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[id]
	if !ok {
		return serve.JobStatus{}, false
	}
	return c.statusLocked(cs), true
}

func (c *Coordinator) statusLocked(cs *campaignState) serve.JobStatus {
	st := serve.JobStatus{ID: cs.id, State: cs.state, Error: cs.errMsg, Events: cs.merged}
	if cs.state == serve.StateDone {
		st.ResultID = cs.id
	}
	return st
}

// Result returns the aggregated report of a finished campaign: from the
// finalized summary when this life merged it, otherwise recomputed from
// the on-disk store (the restart path). The int is an HTTP status.
func (c *Coordinator) Result(id string) (*serve.Result, int) {
	c.mu.Lock()
	cs, known := c.campaigns[id]
	var spec campaign.Spec
	if known {
		spec = cs.spec
		if cs.summary != nil {
			res := &serve.Result{ID: id, Summary: cs.summary}
			c.mu.Unlock()
			return res, http.StatusOK
		}
		if cs.state == serve.StateQueued || cs.state == serve.StateRunning {
			c.mu.Unlock()
			return nil, http.StatusConflict
		}
	}
	c.mu.Unlock()
	recs, err := campaign.ReadRecords(c.storePath(id))
	if err != nil || len(recs) == 0 {
		return nil, http.StatusNotFound
	}
	return &serve.Result{ID: id, Summary: campaign.Aggregate(summaryName(spec), recs)}, http.StatusOK
}

// SpecOf returns a campaign's spec so a worker can expand the same job
// list locally.
func (c *Coordinator) SpecOf(id string) (campaign.Spec, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[id]
	if !ok {
		return campaign.Spec{}, false
	}
	return cs.spec, true
}

func (c *Coordinator) storePath(id string) string {
	return filepath.Join(c.cfg.StoreDir, id+".jsonl")
}

// SortedArtifactPath is where a coordinator finalizes campaign id's
// canonical key-sorted JSONL artifact.
func SortedArtifactPath(dir, id string) string {
	return filepath.Join(dir, id+".sorted.jsonl")
}

// persistManifestLocked mirrors the set of unfinished campaigns to the
// queue manifest (the shared serve format, atomically written).
func (c *Coordinator) persistManifestLocked() error {
	pending := make([]serve.ManifestJob, 0, len(c.campaigns))
	for _, cs := range c.campaigns {
		if cs.state == serve.StateQueued || cs.state == serve.StateRunning {
			pending = append(pending, serve.ManifestJob{ID: cs.id, Spec: cs.spec})
		}
	}
	return serve.WriteManifest(serve.ManifestPath(c.cfg.StoreDir), pending)
}

func summaryName(spec campaign.Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "aresd"
}
