package dist

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ares-cps/ares/internal/metrics"
)

// FuzzDistEnvelope drives arbitrary bytes through every worker↔coordinator
// wire endpoint, mirroring serve.FuzzJobSpec on the submission surface.
// Invariants: the handlers answer a sane status and never panic; the
// strict decoder and the handlers agree (a body that fails decodeWire is
// a 400, a well-formed register with a valid worker ID is a 200); and
// decoding is stable (decode twice, equal results).
func FuzzDistEnvelope(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"worker":"w0"}`))
	f.Add([]byte(`{"worker":"w0","max":4}`))
	f.Add([]byte(`{"worker":"w0","lease":"L000001"}`))
	f.Add([]byte(`{"worker":"w0","lease":"L000001","offset":0,"records":[{"key":"k","mission":"line-40","variable":"PIDR.INTEG","goal":"deviation","defense":"none","trial":0,"seed":9,"status":"ok"}]}`))
	f.Add([]byte(`{"worker":"w0","bogus":1}`))
	f.Add([]byte(`{"worker":"w0"} trailing`))
	f.Add([]byte(`{"worker":"has space"}`))
	f.Add([]byte(`{"worker":"` + string(bytes.Repeat([]byte{'x'}, 200)) + `"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"offset":-1}`))

	c, err := NewCoordinator(CoordConfig{
		StoreDir: f.TempDir(),
		LeaseTTL: time.Hour,
		Metrics:  metrics.NewRegistry(),
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := c.Handler()
	endpoints := []string{
		"/v1/dist/register",
		"/v1/dist/lease",
		"/v1/dist/heartbeat",
		"/v1/dist/records",
		"/v1/dist/complete",
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		// The fuzzer registers a worker per decodable body; keep the
		// registry bounded so shard math stays cheap across iterations.
		c.mu.Lock()
		if len(c.workers) > 1024 {
			c.workers = make(map[string]bool)
		}
		c.mu.Unlock()

		for _, ep := range endpoints {
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("POST", ep, bytes.NewReader(body)))
			switch rec.Code {
			case http.StatusOK, http.StatusBadRequest,
				http.StatusNotFound, http.StatusConflict,
				http.StatusRequestEntityTooLarge:
			default:
				t.Fatalf("%s: unexpected status %d for body %q", ep, rec.Code, body)
			}
		}

		req, err := decodeWire[RegisterRequest](bytes.NewReader(body), maxControlBytes)
		req2, err2 := decodeWire[RegisterRequest](bytes.NewReader(body), maxControlBytes)
		if (err == nil) != (err2 == nil) || req != req2 {
			t.Fatalf("decode not stable for %q: (%+v, %v) vs (%+v, %v)", body, req, err, req2, err2)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/dist/register", bytes.NewReader(body)))
		if err != nil || validWorkerID(req.Worker) != nil {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("undecodable register answered %d, want 400: %q", rec.Code, body)
			}
			return
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("valid register %q answered %d, want 200", body, rec.Code)
		}
		// Registration is idempotent: the same envelope again is still 200.
		rec2 := httptest.NewRecorder()
		handler.ServeHTTP(rec2, httptest.NewRequest("POST", "/v1/dist/register", bytes.NewReader(body)))
		if rec2.Code != http.StatusOK {
			t.Fatalf("re-register answered %d, want 200", rec2.Code)
		}
	})
}
