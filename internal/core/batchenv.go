package core

import (
	"fmt"

	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/rl"
	"github.com/ares-cps/ares/internal/sim"
)

// BatchEnv runs N DeviationEnv-equivalent episodes in lockstep over one
// shared structure-of-arrays physics kernel (sim.BatchQuad). Each lane
// keeps its own firmware stack — sensors, EKF, controllers, CI monitor and
// recovery guard are per-lane state — but every lane's vehicle is a lane of
// the same batch, so the RK4 integration runs through the flattened batched
// kernel instead of N scalar Quads.
//
// The determinism contract matches the rest of the repo: lane k is
// bit-identical to a scalar DeviationEnv constructed from the same
// EnvConfig (same seed stream, same detector/recovery clones), because a
// freshly reset batch lane is bit-identical to a freshly built Quad and the
// batched kernel is bit-identical to the scalar one. Lanes finish
// independently: a lane whose episode ends (crash, alarm, step budget) is
// retired from the batch and skipped until the next Reset.
type BatchEnv struct {
	lanes []*DeviationEnv
	batch *sim.BatchQuad
	done  []bool
}

// NewBatchDeviationEnv builds one DeviationEnv lane per config, all flying
// lanes of a single shared BatchQuad. Configs usually differ only in Seed
// (one trial per lane) but may also carry per-lane Detector/Recovery
// clones; missions with obstacle worlds are not batchable (CrashEnv owns
// its world) and belong on the scalar path.
func NewBatchDeviationEnv(cfgs []EnvConfig) (*BatchEnv, error) {
	n := len(cfgs)
	if n == 0 {
		return nil, fmt.Errorf("core: batch env needs at least one lane config")
	}
	batch, err := sim.NewBatchQuad(sim.IRISPlusParams(), n)
	if err != nil {
		return nil, err
	}
	lanes := make([]*DeviationEnv, n)
	for k := range cfgs {
		env, err := NewDeviationEnv(cfgs[k])
		if err != nil {
			return nil, fmt.Errorf("core: batch lane %d: %w", k, err)
		}
		lane := batch.Lane(k)
		env.plant = func() sim.Vehicle {
			lane.Reset(mathx.Vec3{})
			return lane
		}
		lanes[k] = env
	}
	return &BatchEnv{
		lanes: lanes,
		batch: batch,
		done:  make([]bool, n),
	}, nil
}

// Len returns the number of lanes.
func (b *BatchEnv) Len() int { return len(b.lanes) }

// Lane returns lane k's environment; each lane satisfies rl.Env, so the
// lockstep trainer can consume the batch as a slice of environments.
func (b *BatchEnv) Lane(k int) *DeviationEnv { return b.lanes[k] }

// Envs returns the lanes as rl.Env values for rl.LockstepRollouts /
// rl.TrainLockstep.
func (b *BatchEnv) Envs() []rl.Env {
	envs := make([]rl.Env, len(b.lanes))
	for k, lane := range b.lanes {
		envs[k] = lane
	}
	return envs
}

// Batch exposes the shared physics kernel (lane retirement state lives
// there).
func (b *BatchEnv) Batch() *sim.BatchQuad { return b.batch }

// Reset starts a new episode on every lane and returns per-lane initial
// observations.
func (b *BatchEnv) Reset() [][]float64 {
	obs := make([][]float64, len(b.lanes))
	for k, lane := range b.lanes {
		obs[k] = lane.Reset()
		b.done[k] = false
	}
	return obs
}

// Step advances every unfinished lane by one action interval. Finished
// lanes keep nil observations and zero rewards; their done flag stays true.
// A lane that finishes during this call is retired from the shared batch so
// subsequent physics ticks skip it.
func (b *BatchEnv) Step(actions []float64) (obs [][]float64, rewards []float64, done []bool) {
	if len(actions) != len(b.lanes) {
		panic(fmt.Sprintf("core: batch env of %d lanes stepped with %d actions", len(b.lanes), len(actions)))
	}
	obs = make([][]float64, len(b.lanes))
	rewards = make([]float64, len(b.lanes))
	done = make([]bool, len(b.lanes))
	for k, lane := range b.lanes {
		if b.done[k] {
			done[k] = true
			continue
		}
		o, r, d := lane.Step(actions[k])
		obs[k], rewards[k], done[k] = o, r, d
		if d {
			b.done[k] = true
			b.batch.Retire(k)
		}
	}
	return obs, rewards, done
}

// Done reports whether lane k's episode has ended.
func (b *BatchEnv) Done(k int) bool { return b.done[k] }

// AllDone reports whether every lane's episode has ended.
func (b *BatchEnv) AllDone() bool {
	for _, d := range b.done {
		if !d {
			return false
		}
	}
	return true
}
