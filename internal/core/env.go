package core

import (
	"fmt"
	"strings"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/defense"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/rl"
	"github.com/ares-cps/ares/internal/sensors"
	"github.com/ares-cps/ares/internal/sim"
	"github.com/ares-cps/ares/internal/vars"
)

// EnvConfig configures the RL attack environments.
type EnvConfig struct {
	// Variable is the TSVL state variable the agent manipulates, and
	// Region the compromised MPU region it lives in.
	Variable string
	Region   string
	// MaxAction bounds the per-action manipulation magnitude.
	MaxAction float64
	// ActionInterval is the seconds between agent actions (paper: 0.3).
	ActionInterval float64
	// Mission is the flight the attack disrupts; nil uses a 60 m line.
	Mission *firmware.Mission
	// Detector, when non-nil, runs in the loop and ends the episode with
	// the −∞ penalty on alarm (the Section V-C reward shaping).
	Detector *defense.ControlInvariants
	// Recovery, when non-nil, runs the SpecGuard-style recovery defense in
	// the loop: its detector observes every tick and, once engaged, the
	// conservative recovery controller clamps the attitude commands and
	// bleeds the integrators. Unlike Detector, an alarm does NOT terminate
	// the episode — the defender's response is recovery, not abort — so
	// the evaluation measures the *physical* outcome the attack achieves
	// against an actively recovering vehicle. The detection itself is
	// still recorded (Alarmed/EvalDetected), so the campaign success
	// criterion — an undetected failure — already counts a recovered
	// flight as a defended one.
	Recovery *defense.RecoveryGuard
	// Seed drives per-episode variation.
	Seed int64
	// SetupSeconds is the pre-mission flight time (takeoff + settle).
	SetupSeconds float64
	// PerTick selects the manipulation semantics. False (default): each
	// action adds its amount to the variable once — right for stateful
	// cells like the PID integrator, which hold the injected value.
	// True: the amount is re-applied at every 400 Hz tick during the
	// action interval — required for cells the firmware rewrites each
	// cycle (e.g. the CMD.* handoff), where the injection acts as a
	// standing offset.
	PerTick bool
}

func (c *EnvConfig) applyDefaults() {
	if c.Region == "" {
		c.Region = firmware.RegionStabilizer
	}
	if c.MaxAction == 0 {
		c.MaxAction = 0.1
	}
	if c.ActionInterval == 0 {
		c.ActionInterval = 0.3
	}
	if c.Mission == nil {
		c.Mission = firmware.LineMission(60, 10)
	}
	if c.SetupSeconds == 0 {
		c.SetupSeconds = 8
	}
}

// baseEnv holds the machinery shared by both attack environments.
type baseEnv struct {
	cfg     EnvConfig
	fw      *firmware.Firmware
	ref     vars.Ref
	ciObs   *attack.CIObserver
	recRefs defense.RecoveryRefs
	episode int
	ticks   int
	alarmed bool
	world   *sim.World
	// plant, when set, supplies the vehicle each episode's firmware flies —
	// the BatchEnv hook that points N episodes at lanes of one shared
	// sim.BatchQuad. It must return a pristine (freshly reset) vehicle so
	// the episode is bit-identical to the scalar fresh-Quad path.
	plant func() sim.Vehicle

	// Injection state consumed by the firmware's mid-pipeline hook.
	pendDelta float64
	pendOnce  bool
}

// reset rebuilds the episode: fresh firmware (per-episode sensor seed),
// takeoff, mission start — the Gym env reset of Section V-A ("landing,
// disarming the vehicle, and resetting it back into its initial position"
// realized as a clean re-launch).
func (b *baseEnv) reset() error {
	fw, err := attack.NewFirmware(b.cfg.Seed + int64(b.episode)) //areslint:ignore seedarith golden-pinned
	if err != nil {
		return err
	}
	switch {
	case b.plant != nil:
		// Fly an injected plant (a shared-batch lane) instead of the
		// firmware-built scalar Quad; same sensor seed, same trajectory.
		fw, err = attack.NewFirmwareWithPlant(b.cfg.Seed+int64(b.episode), b.plant()) //areslint:ignore seedarith golden-pinned
		if err != nil {
			return err
		}
	case b.world != nil:
		// Rebuild with the obstacle world.
		fw, err = newFirmwareWithWorld(b.cfg.Seed+int64(b.episode), b.world) //areslint:ignore seedarith golden-pinned
		if err != nil {
			return err
		}
	}
	b.fw = fw
	b.episode++
	b.alarmed = false

	alt := -b.cfg.Mission.Target().Z
	if err := fw.Takeoff(alt); err != nil {
		return err
	}
	fw.RunFor(b.cfg.SetupSeconds)
	wps := make([]firmware.Waypoint, 0, b.cfg.Mission.Len())
	for _, p := range b.cfg.Mission.Path() {
		wps = append(wps, firmware.Waypoint{Pos: p})
	}
	fw.LoadMission(firmware.NewMission(wps))
	if err := fw.StartMission(); err != nil {
		return err
	}
	ref, err := fw.Memory().Access(b.cfg.Region, b.cfg.Variable, true)
	if err != nil {
		return err
	}
	b.ref = ref
	b.pendDelta, b.pendOnce = 0, false
	if b.cfg.Recovery != nil {
		b.cfg.Recovery.Reset()
		if b.recRefs, err = attack.RecoveryRefsOf(fw); err != nil {
			return err
		}
	}
	// The injection fires from the firmware's mid-pipeline hook, after
	// the navigator writes its commands and before the stabilizer
	// consumes them — so both stateful cells (INTEG) and per-cycle
	// rewritten cells (CMD.*) are manipulable. The recovery clamp runs
	// after the injection so the legitimate defense gets the last word on
	// the handoff cells, exactly as in the attack-session path.
	fw.SetAttackHook(func() {
		switch {
		case b.cfg.PerTick:
			b.ref.Add(b.pendDelta)
		case b.pendOnce:
			b.ref.Add(b.pendDelta)
			b.pendOnce = false
		}
		if b.cfg.Recovery != nil {
			b.cfg.Recovery.Apply(b.recRefs)
		}
	})
	if b.cfg.Detector != nil || b.cfg.Recovery != nil {
		b.ciObs = attack.NewCIObserver(fw)
	}
	if b.cfg.Detector != nil {
		b.cfg.Detector.Reset()
	}
	b.ticks = int(b.cfg.ActionInterval / fw.DT())
	if b.ticks < 1 {
		b.ticks = 1
	}
	return nil
}

// advance injects the action and runs one action interval, returning
// whether a detector alarm fired.
func (b *baseEnv) advance(action float64) bool {
	b.pendDelta = mathx.Clamp(action, -b.cfg.MaxAction, b.cfg.MaxAction)
	b.pendOnce = true
	for i := 0; i < b.ticks; i++ {
		b.fw.Step()
		if b.cfg.Detector != nil {
			if v := b.cfg.Detector.Observe(b.ciObs.Sample(b.fw)); v.Alarm {
				b.alarmed = true
			}
		}
		if b.cfg.Recovery != nil {
			// The guard's detection is recorded but deliberately not fed
			// back to the reward: recovery responds physically instead of
			// aborting, so the episode continues and the evaluation
			// measures what the attack achieves against the clamps.
			if v := b.cfg.Recovery.Observe(b.ciObs.Sample(b.fw), b.fw.Time()); v.Alarm {
				b.alarmed = true
			}
		}
		if crashed, _ := b.fw.Quad().Crashed(); crashed {
			break
		}
	}
	if b.cfg.Recovery != nil {
		return false
	}
	return b.alarmed
}

// recovered reports whether the recovery guard engaged this episode.
func (b *baseEnv) recovered() bool {
	return b.cfg.Recovery != nil && b.cfg.Recovery.Engaged()
}

func newFirmwareWithWorld(seed int64, world *sim.World) (*firmware.Firmware, error) {
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	return firmware.New(firmware.Config{World: world, Sensors: sensorCfg})
}

// validateTarget checks at construction time that the configured variable
// is reachable from the configured region, so Reset cannot fail on a
// misconfigured target.
func validateTarget(cfg EnvConfig) error {
	fw, err := attack.NewFirmware(cfg.Seed)
	if err != nil {
		return err
	}
	if _, err := fw.Memory().Access(cfg.Region, cfg.Variable, true); err != nil {
		return fmt.Errorf("core: env target: %w", err)
	}
	return nil
}

// DeviationEnv is the uncontrolled-failure environment (Case Study I): the
// agent manipulates one state variable to push the vehicle off its mission
// path, rewarded by Equation 4.
type DeviationEnv struct {
	baseEnv

	reward *rl.UncontrolledReward
	path   []mathx.Vec3
}

var _ rl.Env = (*DeviationEnv)(nil)

// NewDeviationEnv creates the environment.
func NewDeviationEnv(cfg EnvConfig) (*DeviationEnv, error) {
	cfg.applyDefaults()
	if cfg.Variable == "" {
		return nil, fmt.Errorf("core: deviation env needs a target variable")
	}
	if err := validateTarget(cfg); err != nil {
		return nil, err
	}
	e := &DeviationEnv{
		baseEnv: baseEnv{cfg: cfg},
		reward:  rl.NewUncontrolledReward(),
	}
	e.path = cfg.Mission.Path()
	return e, nil
}

// Reset implements rl.Env.
func (e *DeviationEnv) Reset() []float64 {
	if err := e.reset(); err != nil {
		// An environment that cannot reset cannot train; surfacing the
		// error through a panic here is a programming/configuration bug,
		// not a runtime condition (mission and variable were validated
		// at construction).
		panic(fmt.Sprintf("core: deviation env reset: %v", err))
	}
	e.reward.Reset()
	e.reward.Step(e.pathDist(), false)
	return e.observe()
}

// Step implements rl.Env.
func (e *DeviationEnv) Step(action float64) ([]float64, float64, bool) {
	alarm := e.advance(action)
	dist := e.pathDist()
	reward, done := e.reward.Step(dist, alarm)
	if crashed, _ := e.fw.Quad().Crashed(); crashed {
		done = true
	}
	return e.observe(), reward, done
}

// ObservationSize implements rl.Env.
func (e *DeviationEnv) ObservationSize() int { return 5 }

// ActionBounds implements rl.Env.
func (e *DeviationEnv) ActionBounds() (float64, float64) {
	return -e.cfg.MaxAction, e.cfg.MaxAction
}

// PathDistance exposes the current deviation (for evaluation rollouts).
func (e *DeviationEnv) PathDistance() float64 { return e.pathDist() }

// Alarmed reports whether the in-loop detector fired this episode.
func (e *DeviationEnv) Alarmed() bool { return e.alarmed }

// Firmware exposes the running stack (read-only use in evaluations).
func (e *DeviationEnv) Firmware() *firmware.Firmware { return e.fw }

func (e *DeviationEnv) pathDist() float64 {
	return mathx.PathDistance(e.fw.Quad().State().Pos, e.path)
}

// observe builds the normalized observation: deviation, roll, roll rate,
// manipulated-variable value, mission progress.
func (e *DeviationEnv) observe() []float64 {
	st := e.fw.Quad().State()
	roll, _, _ := st.Euler()
	progress := 0.0
	if n := len(e.path); n > 1 {
		total := e.path[0].Dist(e.path[n-1])
		if total > 0 {
			progress = mathx.Clamp(st.Pos.Dist(e.path[0])/total, 0, 2)
		}
	}
	return []float64{
		e.pathDist() / 10,
		roll,
		st.Omega.X,
		e.ref.Get(),
		progress,
	}
}

// CrashEnv is the controlled-failure environment (Case Study II): the agent
// steers the vehicle toward a forbidden zone, rewarded by Equation 5.
type CrashEnv struct {
	baseEnv

	reward   *rl.ControlledReward
	obstacle sim.Obstacle
}

var _ rl.Env = (*CrashEnv)(nil)

// NewCrashEnv creates the environment with the given forbidden zone.
func NewCrashEnv(cfg EnvConfig, obstacle sim.Obstacle) (*CrashEnv, error) {
	cfg.applyDefaults()
	if cfg.Variable == "" {
		return nil, fmt.Errorf("core: crash env needs a target variable")
	}
	if err := validateTarget(cfg); err != nil {
		return nil, err
	}
	world := &sim.World{}
	world.AddObstacle(obstacle)
	e := &CrashEnv{
		baseEnv:  baseEnv{cfg: cfg, world: world},
		reward:   rl.NewControlledReward(),
		obstacle: obstacle,
	}
	// Contact distance: the vehicle's physical extent.
	e.reward.Epsilon = 0.3
	return e, nil
}

// Reset implements rl.Env.
func (e *CrashEnv) Reset() []float64 {
	if err := e.reset(); err != nil {
		panic(fmt.Sprintf("core: crash env reset: %v", err))
	}
	e.reward.Reset()
	e.reward.Step(e.goalDist(), false)
	return e.observe()
}

// Step implements rl.Env.
func (e *CrashEnv) Step(action float64) ([]float64, float64, bool) {
	alarm := e.advance(action)
	dist := e.goalDist()
	// A registered collision with the target obstacle is goal contact
	// even if the crash handler froze the vehicle just outside Epsilon.
	if crashed, reason := e.fw.Quad().Crashed(); crashed &&
		strings.Contains(reason, e.obstacle.Name) {
		dist = 0
	}
	reward, done := e.reward.Step(dist, alarm)
	if crashed, _ := e.fw.Quad().Crashed(); crashed {
		done = true
	}
	return e.observe(), reward, done
}

// ObservationSize implements rl.Env.
func (e *CrashEnv) ObservationSize() int { return 5 }

// ActionBounds implements rl.Env.
func (e *CrashEnv) ActionBounds() (float64, float64) {
	return -e.cfg.MaxAction, e.cfg.MaxAction
}

// GoalDistance exposes the distance to the forbidden zone.
func (e *CrashEnv) GoalDistance() float64 { return e.goalDist() }

// Firmware exposes the running stack.
func (e *CrashEnv) Firmware() *firmware.Firmware { return e.fw }

func (e *CrashEnv) goalDist() float64 {
	return e.obstacle.Box.Distance(e.fw.Quad().State().Pos)
}

func (e *CrashEnv) observe() []float64 {
	st := e.fw.Quad().State()
	roll, _, _ := st.Euler()
	center := e.obstacle.Box.Center()
	return []float64{
		e.goalDist() / 10,
		(center.X - st.Pos.X) / 10,
		(center.Y - st.Pos.Y) / 10,
		roll,
		e.ref.Get(),
	}
}
