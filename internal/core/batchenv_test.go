package core

import (
	"math"
	"sync"
	"testing"

	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
)

// batchLaneCfg builds the per-lane env config used by the equivalence
// tests: a strong per-tick CMD.Roll injection so lanes destabilize and
// finish (crash) at lane-dependent ticks.
func batchLaneCfg(seed int64) EnvConfig {
	return EnvConfig{
		Variable:  "CMD.Roll",
		MaxAction: 1.6,
		Mission:   firmware.LineMission(60, 10),
		Seed:      seed,
		PerTick:   true,
	}
}

// laneAction is the deterministic action stream for one lane: after a
// lane-staggered onset delay it holds a roll command past what the
// throttle loop can counter (the firmware clamps CMD.Roll to max lean, so
// grading the magnitude would not separate the lanes — the onset delay
// does), guaranteeing lanes crash on different steps.
func laneAction(lane, step int) float64 {
	if step < lane*8 {
		return 0.05 * math.Sin(float64(step)/3+float64(lane))
	}
	return 1.5
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchEnvLaneEquivalence is the environment-level determinism
// contract: every BatchEnv lane produces observations, rewards, done
// flags, deviations and crash states bit-identical to a scalar
// DeviationEnv built from the same config — across two episodes, with
// lanes finishing on different steps.
func TestBatchEnvLaneEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full firmware episodes")
	}
	const n = 3
	const maxSteps = 150
	cfgs := make([]EnvConfig, n)
	for k := range cfgs {
		cfgs[k] = batchLaneCfg(mathx.DeriveSeed(7, int64(k+1)))
	}
	batch, err := NewBatchDeviationEnv(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*DeviationEnv, n)
	for k := range cfgs {
		scalars[k], err = NewDeviationEnv(cfgs[k])
		if err != nil {
			t.Fatal(err)
		}
	}

	for episode := 0; episode < 2; episode++ {
		bObs := batch.Reset()
		sObs := make([][]float64, n)
		for k, env := range scalars {
			sObs[k] = env.Reset()
		}
		for k := range scalars {
			if !float64sEqual(bObs[k], sObs[k]) {
				t.Fatalf("episode %d lane %d: reset obs %v vs scalar %v", episode, k, bObs[k], sObs[k])
			}
		}

		sDone := make([]bool, n)
		doneStep := make([]int, n)
		for i := range doneStep {
			doneStep[i] = -1
		}
		for step := 0; step < maxSteps; step++ {
			actions := make([]float64, n)
			for k := range actions {
				actions[k] = laneAction(k, step)
			}
			gotObs, gotRew, gotDone := batch.Step(actions)
			for k, env := range scalars {
				if sDone[k] {
					// The batch must also consider the lane done and must
					// not have stepped it.
					if !gotDone[k] || gotObs[k] != nil || gotRew[k] != 0 {
						t.Fatalf("episode %d lane %d step %d: finished lane was stepped", episode, k, step)
					}
					continue
				}
				wantObs, wantRew, wantDone := env.Step(actions[k])
				if !float64sEqual(gotObs[k], wantObs) || gotRew[k] != wantRew || gotDone[k] != wantDone {
					t.Fatalf("episode %d lane %d step %d:\nbatch:  obs=%v r=%v done=%v\nscalar: obs=%v r=%v done=%v",
						episode, k, step, gotObs[k], gotRew[k], gotDone[k], wantObs, wantRew, wantDone)
				}
				if bd, sd := batch.Lane(k).PathDistance(), env.PathDistance(); bd != sd {
					t.Fatalf("episode %d lane %d step %d: deviation %v vs %v", episode, k, step, bd, sd)
				}
				bc, br := batch.Lane(k).Firmware().Quad().Crashed()
				sc, sr := env.Firmware().Quad().Crashed()
				if bc != sc || br != sr {
					t.Fatalf("episode %d lane %d step %d: crash (%v,%q) vs (%v,%q)", episode, k, step, bc, br, sc, sr)
				}
				if wantDone {
					sDone[k] = true
					doneStep[k] = step
					if !batch.Done(k) || !batch.Batch().Retired(k) {
						t.Fatalf("episode %d lane %d: finished but not retired from batch", episode, k)
					}
				}
			}
			if batch.AllDone() {
				break
			}
		}

		// The point of the staggered action streams: lanes must finish on
		// different steps, so retirement independence is actually exercised.
		finished := map[int]bool{}
		for k, at := range doneStep {
			if at < 0 {
				t.Fatalf("episode %d lane %d never finished within %d steps", episode, k, maxSteps)
			}
			finished[at] = true
			_ = k
		}
		if len(finished) < 2 {
			t.Fatalf("episode %d: all lanes finished on step set %v; no stagger", episode, doneStep)
		}
	}
}

// TestBatchEnvValidation covers constructor and Step argument errors.
func TestBatchEnvValidation(t *testing.T) {
	if _, err := NewBatchDeviationEnv(nil); err == nil {
		t.Fatal("empty config list accepted")
	}
	if _, err := NewBatchDeviationEnv([]EnvConfig{{}}); err == nil {
		t.Fatal("config without variable accepted")
	}
	batch, err := NewBatchDeviationEnv([]EnvConfig{batchLaneCfg(1), batchLaneCfg(2)})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 2 || len(batch.Envs()) != 2 {
		t.Fatalf("Len/Envs = %d/%d, want 2/2", batch.Len(), len(batch.Envs()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched actions length did not panic")
		}
	}()
	batch.Step([]float64{0})
}

// batchRunSummary is one worker's per-lane outcome fingerprint.
type batchRunSummary struct {
	doneStep  []int
	deviation []float64
	reason    []string
}

// runBatchEpisode drives one fresh BatchEnv through a full episode with the
// shared deterministic action streams and fingerprints every lane.
func runBatchEpisode(t *testing.T, cfgs []EnvConfig, maxSteps int) batchRunSummary {
	t.Helper()
	batch, err := NewBatchDeviationEnv(cfgs)
	if err != nil {
		t.Error(err)
		return batchRunSummary{}
	}
	n := batch.Len()
	sum := batchRunSummary{
		doneStep:  make([]int, n),
		deviation: make([]float64, n),
		reason:    make([]string, n),
	}
	for i := range sum.doneStep {
		sum.doneStep[i] = -1
	}
	batch.Reset()
	for step := 0; step < maxSteps && !batch.AllDone(); step++ {
		actions := make([]float64, n)
		for k := range actions {
			actions[k] = laneAction(k, step)
		}
		_, _, done := batch.Step(actions)
		for k := range done {
			if done[k] && sum.doneStep[k] < 0 {
				sum.doneStep[k] = step
				sum.deviation[k] = batch.Lane(k).PathDistance()
				_, sum.reason[k] = batch.Lane(k).Firmware().Quad().Crashed()
			}
		}
	}
	return sum
}

// TestBatchEnvParallelWorkers runs independent batched rollouts concurrently
// under the race detector at 1, 2 and 8 workers and checks every worker
// reproduces the identical per-lane outcome: batches share no hidden state.
func TestBatchEnvParallelWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full firmware episodes")
	}
	const lanes = 2
	const maxSteps = 120
	cfgs := make([]EnvConfig, lanes)
	for k := range cfgs {
		cfgs[k] = batchLaneCfg(mathx.DeriveSeed(11, int64(k+1)))
	}
	want := runBatchEpisode(t, cfgs, maxSteps)
	for _, workers := range []int{1, 2, 8} {
		got := make([]batchRunSummary, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				got[w] = runBatchEpisode(t, cfgs, maxSteps)
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			for k := 0; k < lanes; k++ {
				if got[w].doneStep[k] != want.doneStep[k] ||
					got[w].deviation[k] != want.deviation[k] ||
					got[w].reason[k] != want.reason[k] {
					t.Fatalf("workers=%d worker %d lane %d: (%d, %v, %q) vs baseline (%d, %v, %q)",
						workers, w, k,
						got[w].doneStep[k], got[w].deviation[k], got[w].reason[k],
						want.doneStep[k], want.deviation[k], want.reason[k])
				}
			}
		}
	}
}
