package core

import (
	"fmt"
	"math"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/vars"
)

// ProfileConfig configures the RAV profiling step: benign missions flown
// while tracing the full state variable space.
type ProfileConfig struct {
	// Mission is the benign mission to fly; nil uses the 25 m square.
	Mission *firmware.Mission
	// Missions is the number of benign flights (the paper logs 5).
	Missions int
	// SampleHz is the trace rate (the paper logs at 16 Hz).
	SampleHz float64
	// MaxMissionS bounds each flight in simulated seconds.
	MaxMissionS float64
	// Seed seeds sensor noise; each mission uses Seed+i.
	Seed int64
	// Variables restricts tracing to the named variables; empty traces
	// every registered variable.
	Variables []string
}

// Profile holds the traced operation data: one time series per state
// variable, concatenated across missions (with per-mission lengths kept so
// analyses can split them).
type Profile struct {
	// Names lists the traced variables in stable order.
	Names []string
	// Series maps variable name to its samples.
	Series map[string][]float64
	// MissionLens records the sample count of each mission.
	MissionLens []int
	// SampleHz is the trace rate used.
	SampleHz float64
}

// Samples returns the total sample count per variable.
func (p *Profile) Samples() int {
	total := 0
	for _, n := range p.MissionLens {
		total += n
	}
	return total
}

// SeriesFor assembles the (names, series) pair for a list of variables,
// skipping any that were not traced; the second return lists the skipped
// names.
func (p *Profile) SeriesFor(names []string) ([]string, [][]float64, []string) {
	var kept []string
	var series [][]float64
	var missing []string
	for _, n := range names {
		s, ok := p.Series[n]
		if !ok {
			missing = append(missing, n)
			continue
		}
		kept = append(kept, n)
		series = append(series, s)
	}
	return kept, series, missing
}

// CollectProfile flies the configured benign missions and traces the state
// variable space through the live variable set — the memory-instrumentation
// view of the paper's profiling step.
func CollectProfile(cfg ProfileConfig) (*Profile, error) {
	if cfg.Mission == nil {
		cfg.Mission = firmware.SquareMission(25, 10)
	}
	if cfg.Missions <= 0 {
		cfg.Missions = 5
	}
	if cfg.SampleHz <= 0 {
		cfg.SampleHz = 16
	}
	if cfg.MaxMissionS <= 0 {
		cfg.MaxMissionS = 120
	}

	prof := &Profile{
		Series:   make(map[string][]float64),
		SampleHz: cfg.SampleHz,
	}

	for m := 0; m < cfg.Missions; m++ {
		fw, err := attack.NewFirmware(cfg.Seed + int64(m)) //areslint:ignore seedarith golden-pinned
		if err != nil {
			return nil, err
		}
		refs, names, err := resolveRefs(fw, cfg.Variables)
		if err != nil {
			return nil, err
		}
		if m == 0 {
			prof.Names = names
			for _, n := range names {
				prof.Series[n] = nil
			}
		}

		alt := -cfg.Mission.Target().Z
		if err := fw.Takeoff(alt); err != nil {
			return nil, err
		}
		fw.RunFor(10)
		wps := make([]firmware.Waypoint, 0, cfg.Mission.Len())
		for _, p := range cfg.Mission.Path() {
			wps = append(wps, firmware.Waypoint{Pos: p})
		}
		fw.LoadMission(firmware.NewMission(wps))
		if err := fw.StartMission(); err != nil {
			return nil, err
		}

		every := int(math.Max(1, math.Round(1/(cfg.SampleHz*fw.DT()))))
		maxTicks := int(cfg.MaxMissionS / fw.DT())
		count := 0
		for i := 0; i < maxTicks && !fw.Mission().Complete(); i++ {
			fw.Step()
			if i%every != 0 {
				continue
			}
			for j, ref := range refs {
				prof.Series[names[j]] = append(prof.Series[names[j]], ref.Get())
			}
			count++
		}
		if crashed, reason := fw.Quad().Crashed(); crashed {
			return nil, fmt.Errorf("core: profiling mission %d crashed: %s", m, reason)
		}
		prof.MissionLens = append(prof.MissionLens, count)
	}
	return prof, nil
}

// ProfileFromLog builds a Profile from a recorded dataflash log — the
// paper's actual KSVL source ("the onboard dataflash memory logger, which
// can be downloaded after an operational mission for debugging"). Only the
// variables the logger records are available; the intermediate controller
// variables that require memory instrumentation (PIDR.INTEG, CMD.*, …) are
// absent, which is exactly the visibility gap the ESVL expansion closes.
//
// The variables argument restricts extraction; empty extracts every logged
// variable. Variables with no records are skipped.
func ProfileFromLog(log *dataflash.Log, variables []string) (*Profile, error) {
	if len(variables) == 0 {
		variables = log.Variables()
	}
	prof := &Profile{Series: make(map[string][]float64)}
	n := -1
	for _, name := range variables {
		_, values := log.Series(name)
		if len(values) == 0 {
			continue
		}
		if n < 0 {
			n = len(values)
		}
		if len(values) != n {
			// Message types logged at different cadences cannot share
			// one aligned matrix; truncate to the shortest.
			if len(values) < n {
				n = len(values)
			}
		}
		prof.Names = append(prof.Names, name)
		prof.Series[name] = values
	}
	if len(prof.Names) == 0 {
		return nil, fmt.Errorf("core: log contains none of the requested variables")
	}
	for _, name := range prof.Names {
		prof.Series[name] = prof.Series[name][:n]
	}
	prof.MissionLens = []int{n}
	// Infer the sample rate from the first variable's timestamps.
	if times, _ := log.Series(prof.Names[0]); len(times) > 1 {
		dt := (times[len(times)-1] - times[0]) / float64(len(times)-1)
		if dt > 0 {
			prof.SampleHz = 1 / dt
		}
	}
	return prof, nil
}

func resolveRefs(fw *firmware.Firmware, names []string) ([]vars.Ref, []string, error) {
	if len(names) == 0 {
		names = fw.Vars().Names()
	}
	refs := make([]vars.Ref, 0, len(names))
	kept := make([]string, 0, len(names))
	for _, n := range names {
		ref, ok := fw.Vars().Lookup(n)
		if !ok {
			return nil, nil, fmt.Errorf("core: unknown variable %q", n)
		}
		refs = append(refs, ref)
		kept = append(kept, n)
	}
	return refs, kept, nil
}
