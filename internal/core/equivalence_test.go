package core

import (
	"bytes"
	"reflect"
	"testing"
)

// TestAnalyzeParallelEquivalence is the concurrency regression guard for
// the Algorithm 1 hot path: the parallel analysis must produce output
// byte-identical to the sequential path at every worker count — same
// TSVLs, same cluster assignments, same correlation matrices, same
// rendered report text. Any scheduling-dependent data flow (a shared
// accumulator, a map iterated concurrently, a non-deterministic merge)
// fails this test.
func TestAnalyzeParallelEquivalence(t *testing.T) {
	prof := collectTestProfile(t)

	run := func(workers int) ([]*GroupAnalysis, *RollAnalysis, string) {
		t.Helper()
		opts := AnalysisOptions{Parallelism: workers}
		groups, err := AnalyzeAllGroups(prof, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		roll, err := AnalyzeRoll(prof, opts)
		if err != nil {
			t.Fatalf("workers=%d roll: %v", workers, err)
		}
		rep := &Report{
			ProfileSamples:  prof.Samples(),
			ProfileMissions: len(prof.MissionLens),
			Groups:          groups,
			Roll:            roll,
		}
		var buf bytes.Buffer
		if err := rep.WriteText(&buf); err != nil {
			t.Fatalf("workers=%d report: %v", workers, err)
		}
		return groups, roll, buf.String()
	}

	seqGroups, seqRoll, seqText := run(1)

	for _, workers := range []int{2, 8} {
		groups, roll, text := run(workers)

		if text != seqText {
			t.Errorf("workers=%d: report text differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				workers, seqText, text)
		}
		if len(groups) != len(seqGroups) {
			t.Fatalf("workers=%d: %d groups, want %d", workers, len(groups), len(seqGroups))
		}
		for gi, g := range groups {
			want := seqGroups[gi]
			if g.Group.Name != want.Group.Name {
				t.Fatalf("workers=%d: group %d is %s, want %s (order changed)",
					workers, gi, g.Group.Name, want.Group.Name)
			}
			if !reflect.DeepEqual(g.TSVL, want.TSVL) {
				t.Errorf("workers=%d %s: TSVL %v != sequential %v",
					workers, g.Group.Name, g.TSVL, want.TSVL)
			}
			if !reflect.DeepEqual(g.Report.Clusters, want.Report.Clusters) {
				t.Errorf("workers=%d %s: clusters %v != sequential %v",
					workers, g.Group.Name, g.Report.Clusters, want.Report.Clusters)
			}
			if !reflect.DeepEqual(g.Report.Kept, want.Report.Kept) {
				t.Errorf("workers=%d %s: kept list differs", workers, g.Group.Name)
			}
			if !reflect.DeepEqual(g.Report.Corr, want.Report.Corr) {
				t.Errorf("workers=%d %s: correlation matrix not bit-identical",
					workers, g.Group.Name)
			}
			if g.Report.ModelsFitted != want.Report.ModelsFitted {
				t.Errorf("workers=%d %s: ModelsFitted %d != %d",
					workers, g.Group.Name, g.Report.ModelsFitted, want.Report.ModelsFitted)
			}
		}
		if !reflect.DeepEqual(roll.TSVL, seqRoll.TSVL) {
			t.Errorf("workers=%d: roll TSVL %v != sequential %v", workers, roll.TSVL, seqRoll.TSVL)
		}
		if !reflect.DeepEqual(roll.Order, seqRoll.Order) {
			t.Errorf("workers=%d: roll dendrogram order differs", workers)
		}
		if !reflect.DeepEqual(roll.Corr, seqRoll.Corr) {
			t.Errorf("workers=%d: roll correlation matrix not bit-identical", workers)
		}
	}
}

// TestAnalyzeDefaultParallelismMatchesSequential pins the default
// (Parallelism 0 → GOMAXPROCS) to the sequential result too, since that is
// what every existing caller gets implicitly.
func TestAnalyzeDefaultParallelismMatchesSequential(t *testing.T) {
	prof := collectTestProfile(t)
	seq, err := AnalyzeAllGroups(prof, AnalysisOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := AnalyzeAllGroups(prof, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i].TSVL, def[i].TSVL) {
			t.Errorf("%s: default-parallelism TSVL %v != sequential %v",
				seq[i].Group.Name, def[i].TSVL, seq[i].TSVL)
		}
		if !reflect.DeepEqual(seq[i].Report.Corr, def[i].Report.Corr) {
			t.Errorf("%s: default-parallelism correlation matrix differs", seq[i].Group.Name)
		}
	}
}
