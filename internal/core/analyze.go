package core

import (
	"fmt"

	"github.com/ares-cps/ares/internal/par"
	"github.com/ares-cps/ares/internal/stats"
)

// AnalysisOptions tunes the Algorithm 1 run.
type AnalysisOptions struct {
	// ClusterCut is the correlation-distance threshold (default 0.5:
	// variables join a subset when |r| with it exceeds ~0.5).
	ClusterCut float64
	// Alpha is the regression significance level (default 0.05).
	Alpha float64
	// Prune overrides the assumption-check options.
	Prune stats.PruneOptions
	// SkipClustering and Exhaustive select the ablation variants.
	SkipClustering bool
	Exhaustive     bool
	// Parallelism is the concurrency budget for the whole analysis: the
	// controller groups fan out across it and each group's Algorithm 1
	// stages (prune, correlation, model selection) share the remainder, so
	// group workers × in-group workers never exceeds it. <= 0 uses the
	// process budget (GOMAXPROCS). Results are identical at any value.
	Parallelism int
}

// pruneOptions returns the configured prune options, defaulting to the
// advisory mode: constants are pruned, distributional p-values are computed
// for the report but do not remove variables. Mission-scale controller
// series are decisively non-Gaussian (maneuvers give their increments heavy
// tails), so exact-test pruning would empty the ESVL — the paper's own
// 24-variable Figure 5 set implies the same leniency in practice.
func (o AnalysisOptions) pruneOptions() stats.PruneOptions {
	if o.Prune != (stats.PruneOptions{}) {
		return o.Prune
	}
	return stats.PruneOptions{ConstTol: 1e-9, Alpha: 0}
}

// GroupAnalysis is the Table II row for one controller function: the size
// of each variable list at each pipeline stage plus the full statistical
// report.
type GroupAnalysis struct {
	Group      ControllerGroup
	KSVLCount  int
	AddedCount int
	ESVLCount  int
	TSVLCount  int
	// Ratio is TSVL/ESVL, the paper's "Ratio of SV Selection".
	Ratio float64
	// TSVL lists the selected target state variables.
	TSVL []string
	// Report is the complete Algorithm 1 output.
	Report *stats.TSVLReport
	// Missing lists group variables absent from the profile (tracing
	// gaps count against coverage, so they are surfaced, not hidden).
	Missing []string
}

// AnalyzeGroup runs Algorithm 1 for one controller group against profiled
// operation data.
func AnalyzeGroup(p *Profile, g ControllerGroup, opts AnalysisOptions) (*GroupAnalysis, error) {
	names, series, missing := p.SeriesFor(g.ESVL())
	if len(names) < 2 {
		return nil, fmt.Errorf("core: group %s: too few traced variables", g.Name)
	}
	rep, err := stats.GenerateTSVL(stats.TSVLInput{
		Names:          names,
		Series:         series,
		Responses:      g.Responses,
		ClusterCut:     opts.ClusterCut,
		Alpha:          opts.Alpha,
		Prune:          opts.pruneOptions(),
		SkipClustering: opts.SkipClustering,
		Exhaustive:     opts.Exhaustive,
		Parallelism:    par.Workers(opts.Parallelism),
	})
	if err != nil {
		return nil, fmt.Errorf("core: group %s: %w", g.Name, err)
	}
	ga := &GroupAnalysis{
		Group:      g,
		KSVLCount:  len(g.KSVL),
		AddedCount: len(g.Added),
		ESVLCount:  len(g.ESVL()),
		TSVLCount:  len(rep.TSVL),
		TSVL:       rep.TSVL,
		Report:     rep,
		Missing:    missing,
	}
	if ga.ESVLCount > 0 {
		ga.Ratio = float64(ga.TSVLCount) / float64(ga.ESVLCount)
	}
	return ga, nil
}

// AnalyzeAllGroups runs Algorithm 1 for every standard controller group —
// the full Table II. Groups fan out across the Parallelism budget and each
// group's internal stages run on its share of the remainder; results land
// in fixed slots and errors surface in group order, so the output (and the
// error, if any) is identical to a sequential run at any worker count.
func AnalyzeAllGroups(p *Profile, opts AnalysisOptions) ([]*GroupAnalysis, error) {
	groups := StandardGroups()
	budget := par.Workers(opts.Parallelism)
	outer := budget
	if outer > len(groups) {
		outer = len(groups)
	}
	inner := opts
	inner.Parallelism = par.Inner(budget, outer)

	out := make([]*GroupAnalysis, len(groups))
	errs := make([]error, len(groups))
	par.Do(outer, len(groups), func(i int) {
		out[i], errs[i] = AnalyzeGroup(p, groups[i], inner)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RollAnalysis is the Figure 3/5 product: the pruned roll-control ESVL,
// its correlation matrix with hierarchically-clustered ordering, and the
// roll TSVL.
type RollAnalysis struct {
	// Names lists the surviving variables in input order.
	Names []string
	// Corr is their Pearson matrix.
	Corr [][]float64
	// Order is the dendrogram leaf ordering for heat-map display.
	Order []int
	// TSVL is the roll-specific target list.
	TSVL []string
	// Report is the full Algorithm 1 output.
	Report *stats.TSVLReport
}

// AnalyzeRoll runs the roll-control analysis of Figures 3 and 5.
func AnalyzeRoll(p *Profile, opts AnalysisOptions) (*RollAnalysis, error) {
	names, series, _ := p.SeriesFor(RollESVL())
	if len(names) < 2 {
		return nil, fmt.Errorf("core: roll ESVL not traced")
	}
	rep, err := stats.GenerateTSVL(stats.TSVLInput{
		Names:          names,
		Series:         series,
		Responses:      []string{RollResponse},
		ClusterCut:     opts.ClusterCut,
		Alpha:          opts.Alpha,
		Prune:          opts.pruneOptions(),
		SkipClustering: opts.SkipClustering,
		Exhaustive:     opts.Exhaustive,
		Parallelism:    par.Workers(opts.Parallelism),
	})
	if err != nil {
		return nil, err
	}
	var order []int
	if rep.Dendro != nil {
		order = rep.Dendro.LeafOrder()
	}
	return &RollAnalysis{
		Names:  rep.Kept,
		Corr:   rep.Corr,
		Order:  order,
		TSVL:   rep.TSVL,
		Report: rep,
	}, nil
}

// CorrelationEdge is one edge of the Figure 3 dependency graph.
type CorrelationEdge struct {
	A, B string
	R    float64
}

// CorrelationEdges lists the pairwise correlations above the magnitude
// threshold, strongest first — the green/red line set of Figure 3.
func (a *RollAnalysis) CorrelationEdges(minAbs float64) []CorrelationEdge {
	var edges []CorrelationEdge
	for i := 0; i < len(a.Names); i++ {
		for j := i + 1; j < len(a.Names); j++ {
			r := a.Corr[i][j]
			if r >= minAbs || r <= -minAbs {
				edges = append(edges, CorrelationEdge{A: a.Names[i], B: a.Names[j], R: r})
			}
		}
	}
	// Sort by |r| descending (insertion sort: edge lists are small).
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && absf(edges[j].R) < absf(e.R) {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
	return edges
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
