package core

import (
	"bytes"
	"testing"

	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/sensors"
)

// recordTestLog flies a logged mission and parses the dataflash back.
func recordTestLog(t *testing.T) *dataflash.Log {
	t.Helper()
	var buf bytes.Buffer
	w := dataflash.NewWriter(&buf)
	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = 600
	fw, err := firmware.New(firmware.Config{Sensors: sensorCfg, LogWriter: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	fw.RunFor(10)
	fw.LoadMission(firmware.SquareMission(25, 10))
	if err := fw.StartMission(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90*400 && !fw.Mission().Complete(); i++ {
		fw.Step()
	}
	if crashed, reason := fw.Quad().Crashed(); crashed {
		t.Fatalf("logged flight crashed: %s", reason)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := dataflash.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestProfileFromLog(t *testing.T) {
	log := recordTestLog(t)
	prof, err := ProfileFromLog(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Names) < 50 {
		t.Errorf("extracted %d variables from the log", len(prof.Names))
	}
	// All series aligned.
	n := prof.Samples()
	for _, name := range prof.Names {
		if len(prof.Series[name]) != n {
			t.Fatalf("series %s length %d != %d", name, len(prof.Series[name]), n)
		}
	}
	// The inferred rate is the 16 Hz logging cadence.
	if prof.SampleHz < 12 || prof.SampleHz > 20 {
		t.Errorf("inferred rate = %.1f Hz, want ~16", prof.SampleHz)
	}
	// Dataflash visibility: the logged dynamics exist, the memory-only
	// intermediates do not — the gap the ESVL expansion closes.
	if _, ok := prof.Series["ATT.Roll"]; !ok {
		t.Error("ATT.Roll missing from log profile")
	}
	if _, ok := prof.Series["PIDR.INTEG"]; ok {
		t.Error("memory-only intermediate leaked into the dataflash profile")
	}
}

// TestLogOnlyAnalysisLosesIntermediates runs Algorithm 1 on the log-visible
// subset of the roll ESVL: it must work, but the selected variables can only
// come from the KSVL — quantifying what the paper's expansion adds.
func TestLogOnlyAnalysisLosesIntermediates(t *testing.T) {
	log := recordTestLog(t)
	prof, err := ProfileFromLog(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	names, series, missing := prof.SeriesFor(RollESVL())
	if len(missing) < 5 {
		t.Errorf("only %d roll intermediates missing from the log; expected the"+
			" memory-only block (INTEG, INPUT, DERIV, OUT, CMD.Roll…)", len(missing))
	}
	if len(names) < 10 {
		t.Fatalf("log-visible roll subset too small: %d", len(names))
	}
	// The log-visible subset still analyzes cleanly.
	rep, err := analyzeSeries(names, series)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.TSVL {
		for _, m := range missing {
			if v == m {
				t.Errorf("selected variable %s was not in the log", v)
			}
		}
	}
}

// analyzeSeries runs GenerateTSVL for the roll response over ad-hoc series.
func analyzeSeries(names []string, series [][]float64) (*RollAnalysis, error) {
	prof := &Profile{Series: make(map[string][]float64)}
	prof.Names = names
	for i, n := range names {
		prof.Series[n] = series[i]
	}
	prof.MissionLens = []int{len(series[0])}
	return AnalyzeRoll(prof, AnalysisOptions{})
}

func TestProfileFromLogErrors(t *testing.T) {
	log := recordTestLog(t)
	if _, err := ProfileFromLog(log, []string{"NOPE.VAR"}); err == nil {
		t.Error("log without requested variables accepted")
	}
	empty := &dataflash.Log{}
	if _, err := ProfileFromLog(empty, nil); err == nil {
		t.Error("empty log accepted")
	}
}
