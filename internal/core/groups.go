// Package core implements the ARES pipeline — the paper's primary
// contribution. It profiles the RAV in simulated flight (collecting both
// the dataflash-visible KSVL and the intermediate controller variables
// traced through the memory-region instrumentation), runs the statistical
// dependency analysis of Algorithm 1 to produce target state variable
// lists, and trains reinforcement-learning agents that craft adversarial
// value sequences for the selected variables.
package core

import (
	"fmt"
)

// ControllerGroup identifies one "essential controller software" function
// of the paper's Table II: the known (dataflash-visible) state variables
// that describe its behavior, plus the intermediate variables inside its
// memory region that expand the KSVL into the ESVL.
type ControllerGroup struct {
	// Name labels the controller function ("PID", "Sqrt", "SINS").
	Name string
	// KSVL lists the dataflash-visible state variables.
	KSVL []string
	// Added lists the intermediate controller variables the memory
	// instrumentation contributes.
	Added []string
	// Responses lists the vehicle dynamics regression targets.
	Responses []string
}

// ESVL returns the expanded state variable list (KSVL ∪ Added).
func (g ControllerGroup) ESVL() []string {
	out := make([]string, 0, len(g.KSVL)+len(g.Added))
	out = append(out, g.KSVL...)
	out = append(out, g.Added...)
	return out
}

// StandardGroups returns the three controller functions of Table II mapped
// onto this firmware's variable inventory. The counts reproduce the
// paper's structure: PID 28→+36→64, Sqrt 9→+12→21, SINS 14→+19→33.
func StandardGroups() []ControllerGroup {
	pidLog := func(prefix string) []string {
		return []string{
			prefix + ".Tar", prefix + ".Act",
			prefix + ".P", prefix + ".I", prefix + ".D",
		}
	}
	pidInner := func(prefix string) []string {
		return []string{
			prefix + ".KP", prefix + ".KI", prefix + ".KD", prefix + ".KFF",
			prefix + ".IMAX", prefix + ".DT", prefix + ".SCALER",
			prefix + ".INTEG", prefix + ".INPUT", prefix + ".DERIV",
			prefix + ".OUT", prefix + ".FF",
		}
	}
	sqrtInner := func(prefix string) []string {
		return []string{prefix + ".P", prefix + ".LIM", prefix + ".ERR", prefix + ".OUT"}
	}

	pid := ControllerGroup{
		Name: "PID",
		KSVL: concat(
			[]string{
				"ATT.DesRoll", "ATT.Roll", "ATT.DesPitch", "ATT.Pitch",
				"ATT.DesYaw", "ATT.Yaw",
			},
			[]string{
				"IMU.GyrX", "IMU.GyrY", "IMU.GyrZ",
				"IMU.AccX", "IMU.AccY", "IMU.AccZ",
			},
			pidLog("PIDR"), pidLog("PIDP"), pidLog("PIDY"),
			[]string{"CTUN.ThO"},
		), // 6 + 6 + 15 + 1 = 28
		Added: concat(
			pidInner("PIDR"), pidInner("PIDP"), pidInner("PIDY"),
		), // 36
		Responses: []string{"ATT.Roll", "ATT.Pitch", "ATT.Yaw"},
	}

	sqrt := ControllerGroup{
		Name: "Sqrt",
		KSVL: []string{
			"ATT.DesRoll", "ATT.Roll", "ATT.DesPitch", "ATT.Pitch",
			"ATT.DesYaw", "ATT.Yaw",
			"RATE.RDes", "RATE.PDes", "RATE.YDes",
		}, // 9
		Added: concat(
			sqrtInner("ANGR"), sqrtInner("ANGP"), sqrtInner("ANGY"),
		), // 12
		Responses: []string{"RATE.RDes", "RATE.PDes"},
	}

	sins := ControllerGroup{
		Name: "SINS",
		KSVL: []string{
			"EKF1.Roll", "EKF1.Pitch", "EKF1.Yaw",
			"EKF1.VN", "EKF1.VE", "EKF1.VD",
			"EKF1.PN", "EKF1.PE", "EKF1.PD",
			"GPS.PN", "GPS.PE", "GPS.PD",
			"BARO.Alt", "MAG.Yaw",
		}, // 14
		Added: []string{
			"SINS.VGAIN", "SINS.PGAIN",
			"SINS.VN", "SINS.VE", "SINS.VD",
			"SINS.PN", "SINS.PE", "SINS.PD",
			"SINS.VCORR", "SINS.PCORR", "SINS.DT",
			"NKF4.IPos", "NKF4.IVel", "NKF4.IMag",
			"NTUN.DVelX", "NTUN.DVelY", "NTUN.DVelZ",
			"NTUN.DAccX", "NTUN.DAccY",
		}, // 19
		Responses: []string{"EKF1.VN", "EKF1.VE"},
	}

	return []ControllerGroup{pid, sqrt, sins}
}

// RollESVL returns the 24-variable expanded state variable list for the
// vehicle's roll control, the subject of the paper's Figure 5 heat map:
// vehicle dynamics, IMU measurements and the roll-rate PID intermediates.
func RollESVL() []string {
	return []string{
		"ATT.DesRoll", "ATT.Roll",
		"PIDR.I", "PIDR.INPUT", "PIDR.INTEG", "PIDR.DERIV",
		"PIDR.P", "PIDR.D", "PIDR.OUT",
		"NTUN.tv", "RATE.RDes", "CMD.Roll",
		"IMU.GyrX", "IMU.GyrY", "IMU.GyrZ",
		"IMU.AccX", "IMU.AccY", "IMU.AccZ",
		"EKF1.VN", "EKF1.VE", "EKF1.VD",
		"EKF1.PN", "EKF1.PE", "EKF1.PD",
	}
}

// RollResponse is the response variable of the Figure 5 analysis.
const RollResponse = "ATT.Roll"

// GroupByName finds a standard group.
func GroupByName(name string) (ControllerGroup, error) {
	for _, g := range StandardGroups() {
		if g.Name == name {
			return g, nil
		}
	}
	return ControllerGroup{}, fmt.Errorf("core: unknown controller group %q", name)
}

func concat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}
