package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/sim"
)

func TestStandardGroupsMatchTableII(t *testing.T) {
	groups := StandardGroups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	want := map[string][3]int{
		"PID":  {28, 36, 64},
		"Sqrt": {9, 12, 21},
		"SINS": {14, 19, 33},
	}
	for _, g := range groups {
		w, ok := want[g.Name]
		if !ok {
			t.Errorf("unexpected group %s", g.Name)
			continue
		}
		if len(g.KSVL) != w[0] {
			t.Errorf("%s KSVL = %d, want %d", g.Name, len(g.KSVL), w[0])
		}
		if len(g.Added) != w[1] {
			t.Errorf("%s Added = %d, want %d", g.Name, len(g.Added), w[1])
		}
		if len(g.ESVL()) != w[2] {
			t.Errorf("%s ESVL = %d, want %d", g.Name, len(g.ESVL()), w[2])
		}
		if len(g.Responses) == 0 {
			t.Errorf("%s has no response variables", g.Name)
		}
	}
}

func TestGroupVariablesExistInFirmware(t *testing.T) {
	fw, err := attack.NewFirmware(1)
	if err != nil {
		t.Fatal(err)
	}
	check := func(names []string, label string) {
		seen := make(map[string]bool)
		for _, n := range names {
			if seen[n] {
				t.Errorf("%s: duplicate variable %s", label, n)
			}
			seen[n] = true
			if _, ok := fw.Vars().Lookup(n); !ok {
				t.Errorf("%s: variable %s not registered in firmware", label, n)
			}
		}
	}
	for _, g := range StandardGroups() {
		check(g.ESVL(), g.Name)
		check(g.Responses, g.Name+" responses")
	}
	roll := RollESVL()
	if len(roll) != 24 {
		t.Errorf("roll ESVL has %d variables, want 24 (Figure 5)", len(roll))
	}
	check(roll, "roll")
}

func TestGroupByName(t *testing.T) {
	g, err := GroupByName("PID")
	if err != nil || g.Name != "PID" {
		t.Errorf("GroupByName(PID) = %v, %v", g.Name, err)
	}
	if _, err := GroupByName("NOPE"); err == nil {
		t.Error("unknown group accepted")
	}
}

// collectTestProfile flies a small profiling run shared by analysis tests.
func collectTestProfile(t *testing.T) *Profile {
	t.Helper()
	prof, err := CollectProfile(ProfileConfig{
		Mission:  firmware.SquareMission(25, 10),
		Missions: 2,
		Seed:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestCollectProfile(t *testing.T) {
	prof := collectTestProfile(t)
	if len(prof.MissionLens) != 2 {
		t.Fatalf("missions = %d", len(prof.MissionLens))
	}
	if prof.Samples() < 500 {
		t.Errorf("samples = %d, want a few hundred (16 Hz missions)", prof.Samples())
	}
	// Every registered variable is traced with consistent length.
	if len(prof.Names) < 100 {
		t.Errorf("traced %d variables", len(prof.Names))
	}
	for _, n := range prof.Names {
		if len(prof.Series[n]) != prof.Samples() {
			t.Fatalf("series %s has %d samples, want %d",
				n, len(prof.Series[n]), prof.Samples())
		}
	}
	// The roll series is alive (the vehicle banks during the mission).
	rolls := prof.Series["ATT.Roll"]
	maxAbs := 0.0
	for _, v := range rolls {
		if a := mathx.Deg(v); a > maxAbs {
			maxAbs = a
		} else if -a > maxAbs {
			maxAbs = -a
		}
	}
	if maxAbs < 2 {
		t.Errorf("max |roll| during mission = %.1f deg, want > 2", maxAbs)
	}
}

func TestCollectProfileUnknownVariable(t *testing.T) {
	_, err := CollectProfile(ProfileConfig{
		Mission:   firmware.LineMission(20, 10),
		Missions:  1,
		Seed:      1,
		Variables: []string{"NOPE.VAR"},
	})
	if err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestAnalyzeAllGroupsProducesTableII(t *testing.T) {
	prof := collectTestProfile(t)
	rows, err := AnalyzeAllGroups(prof, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Missing) > 0 {
			t.Errorf("%s missing variables: %v", row.Group.Name, row.Missing)
		}
		if row.TSVLCount == 0 {
			t.Errorf("%s selected no target variables", row.Group.Name)
		}
		// The selection is a real reduction, as in Table II.
		if row.Ratio <= 0 || row.Ratio >= 0.5 {
			t.Errorf("%s selection ratio = %.1f%%, want a sharp reduction",
				row.Group.Name, row.Ratio*100)
		}
		// TSVL entries come from the ESVL and never include responses.
		esvl := make(map[string]bool)
		for _, v := range row.Group.ESVL() {
			esvl[v] = true
		}
		for _, v := range row.TSVL {
			if !esvl[v] {
				t.Errorf("%s TSVL entry %s not in ESVL", row.Group.Name, v)
			}
			for _, resp := range row.Group.Responses {
				if v == resp {
					t.Errorf("%s TSVL contains response %s", row.Group.Name, v)
				}
			}
		}
	}
}

func TestAnalyzeRoll(t *testing.T) {
	prof := collectTestProfile(t)
	roll, err := AnalyzeRoll(prof, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Names) < 8 {
		t.Fatalf("kept %d roll variables", len(roll.Names))
	}
	if len(roll.Order) != len(roll.Names) {
		t.Errorf("leaf order %d != names %d", len(roll.Order), len(roll.Names))
	}
	if len(roll.TSVL) == 0 {
		t.Error("empty roll TSVL")
	}
	// The Figure 3 property: the roll angle correlates strongly with its
	// commanded value (the backbone edge of the dependency graph).
	idxRoll, idxDes := -1, -1
	for i, n := range roll.Names {
		switch n {
		case "ATT.Roll":
			idxRoll = i
		case "ATT.DesRoll":
			idxDes = i
		}
	}
	if idxRoll < 0 || idxDes < 0 {
		t.Fatal("roll/desroll missing from kept set")
	}
	if r := roll.Corr[idxRoll][idxDes]; r < 0.5 {
		t.Errorf("corr(Roll, DesRoll) = %.3f, want strong dependency", r)
	}
	// Edges are sorted by |r| descending.
	edges := roll.CorrelationEdges(0.3)
	if len(edges) == 0 {
		t.Fatal("no correlation edges above 0.3")
	}
	for i := 1; i < len(edges); i++ {
		if absf(edges[i].R) > absf(edges[i-1].R)+1e-12 {
			t.Fatalf("edges not sorted at %d", i)
		}
	}
}

func TestReportRendering(t *testing.T) {
	prof := collectTestProfile(t)
	rows, err := AnalyzeAllGroups(prof, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	roll, err := AnalyzeRoll(prof, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		ProfileSamples:  prof.Samples(),
		ProfileMissions: len(prof.MissionLens),
		Groups:          rows,
		Roll:            roll,
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "PID", "Sqrt", "SINS", "Ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var heat bytes.Buffer
	if err := roll.HeatmapText(&heat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(heat.String(), "█") {
		t.Error("heat map has no full-correlation cells (diagonal)")
	}
}

func TestDeviationEnvBasics(t *testing.T) {
	env, err := NewDeviationEnv(EnvConfig{
		Variable: "PIDR.INTEG",
		Seed:     200,
		Mission:  firmware.LineMission(40, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := env.Reset()
	if len(obs) != env.ObservationSize() {
		t.Fatalf("obs size %d != %d", len(obs), env.ObservationSize())
	}
	lo, hi := env.ActionBounds()
	if lo >= hi {
		t.Fatalf("bounds %v %v", lo, hi)
	}
	// Max positive manipulation for 20 actions must deviate the vehicle
	// more than no manipulation.
	devAttack := 0.0
	for i := 0; i < 20; i++ {
		if _, _, done := env.Step(hi); done {
			break
		}
	}
	devAttack = env.PathDistance()

	env2, err := NewDeviationEnv(EnvConfig{
		Variable: "PIDR.INTEG",
		Seed:     200,
		Mission:  firmware.LineMission(40, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	env2.Reset()
	for i := 0; i < 20; i++ {
		if _, _, done := env2.Step(0); done {
			break
		}
	}
	devIdle := env2.PathDistance()
	if devAttack <= devIdle {
		t.Errorf("attack deviation %.2f not above idle %.2f", devAttack, devIdle)
	}
}

func TestDeviationEnvRejectsBadTarget(t *testing.T) {
	if _, err := NewDeviationEnv(EnvConfig{Variable: "IMU.GyrX"}); err == nil {
		t.Error("cross-region target accepted (IMU lives in drivers)")
	}
	if _, err := NewDeviationEnv(EnvConfig{}); err == nil {
		t.Error("missing variable accepted")
	}
}

func TestCrashEnvBasics(t *testing.T) {
	// A wall beside the mission's final loiter point (40, 0): a standing
	// +roll command offset drifts the vehicle east (+Y) into it.
	obstacle := sim.Obstacle{
		Name: "wall",
		Box: mathx.AABB{
			Min: mathx.V3(35, 8, -20),
			Max: mathx.V3(45, 12, 0),
		},
	}
	env, err := NewCrashEnv(EnvConfig{
		Variable:  "CMD.Roll",
		PerTick:   true,
		MaxAction: 0.6,
		Seed:      300,
		Mission:   firmware.LineMission(40, 10),
	}, obstacle)
	if err != nil {
		t.Fatal(err)
	}
	obs := env.Reset()
	if len(obs) != env.ObservationSize() {
		t.Fatalf("obs size %d", len(obs))
	}
	d0 := env.GoalDistance()
	if d0 <= 0 {
		t.Fatalf("starting inside the obstacle: %v", d0)
	}
	// A standing max-roll offset produces an orbit that swings close by
	// the wall; modulating the offset to actually hit it is the learning
	// task, so the open-loop check only asserts a close approach (or a
	// direct hit, if the orbit grazes the box).
	_, hi := env.ActionBounds()
	minDist := d0
	for i := 0; i < 80; i++ {
		_, reward, done := env.Step(hi)
		if d := env.GoalDistance(); d < minDist {
			minDist = d
		}
		if done {
			if math.IsInf(reward, 1) {
				minDist = 0
			}
			break
		}
	}
	if minDist > d0/3 {
		t.Errorf("constant push closest approach %v, want < %v", minDist, d0/3)
	}
}

func TestTrainDeviationExploitSmoke(t *testing.T) {
	res, agent, err := TrainDeviationExploit(ExploitConfig{
		Env: EnvConfig{
			Variable: "PIDR.INTEG",
			Seed:     400,
			Mission:  firmware.LineMission(40, 10),
		},
		Episodes: 6,
		MaxSteps: 25,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agent == nil || res.Train == nil || res.Train.Episodes != 6 {
		t.Fatalf("training result: %+v", res)
	}
	if res.Variable != "PIDR.INTEG" || res.Learner != "reinforce" {
		t.Errorf("metadata: %+v", res)
	}
	// Q-learning variant runs too.
	qres, _, err := TrainDeviationExploit(ExploitConfig{
		Env: EnvConfig{
			Variable: "PIDR.INTEG",
			Seed:     410,
			Mission:  firmware.LineMission(40, 10),
		},
		Episodes: 3,
		MaxSteps: 15,
		Seed:     2,
		Learner:  "qlearning",
	})
	if err != nil {
		t.Fatal(err)
	}
	if qres.Learner != "qlearning" || qres.Train.Episodes != 3 {
		t.Errorf("qlearning result: %+v", qres)
	}
	// Unknown learner rejected.
	if _, _, err := TrainDeviationExploit(ExploitConfig{
		Env:     EnvConfig{Variable: "PIDR.INTEG", Seed: 1},
		Learner: "sarsa",
	}); err == nil {
		t.Error("unknown learner accepted")
	}
}
