package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ares-cps/ares/internal/firmware"
)

// benchProfile collects one small benign profile shared by the analysis
// benchmarks, so per-iteration cost is the analysis alone.
var benchProfile = sync.OnceValues(func() (*Profile, error) {
	return CollectProfile(ProfileConfig{
		Mission:  firmware.SquareMission(25, 10),
		Missions: 2,
		Seed:     100,
	})
})

// BenchmarkCollectProfile measures the profiling stage itself: flying the
// benign mission on the 400 Hz firmware stack while tracing every
// registered state variable at 16 Hz.
func BenchmarkCollectProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prof, err := CollectProfile(ProfileConfig{
			Mission:  firmware.SquareMission(25, 10),
			Missions: 1,
			Seed:     100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(prof.Samples()), "samples")
			b.ReportMetric(float64(len(prof.Names)), "variables")
		}
	}
}

// BenchmarkAnalyzeAllGroups measures the full Table II analysis (three
// controller groups through Algorithm 1) at several worker budgets.
func BenchmarkAnalyzeAllGroups(b *testing.B) {
	prof, err := benchProfile()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				groups, err := AnalyzeAllGroups(prof, AnalysisOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					total := 0
					for _, g := range groups {
						total += g.TSVLCount
					}
					b.ReportMetric(float64(total), "TSVL-vars")
				}
			}
		})
	}
}

// BenchmarkAnalyzeRoll measures the Figure 3/5 roll-control analysis.
func BenchmarkAnalyzeRoll(b *testing.B) {
	prof, err := benchProfile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roll, err := AnalyzeRoll(prof, AnalysisOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(roll.Names)), "kept-vars")
		}
	}
}
