package core

import (
	"fmt"
	"io"
	"strings"
)

// Report aggregates a full ARES assessment run.
type Report struct {
	// Profile summarizes the collected operation data.
	ProfileSamples  int
	ProfileMissions int
	// Groups holds the Table II analyses.
	Groups []*GroupAnalysis
	// Roll holds the Figure 3/5 roll-control analysis.
	Roll *RollAnalysis
	// Exploits holds the trained exploit results.
	Exploits []*ExploitResult
}

// WriteText renders the report as aligned text tables.
func (r *Report) WriteText(w io.Writer) error {
	fprintf := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := fprintf("ARES vulnerability assessment report\n"); err != nil {
		return err
	}
	if err := fprintf("profile: %d missions, %d samples/variable\n\n",
		r.ProfileMissions, r.ProfileSamples); err != nil {
		return err
	}

	if len(r.Groups) > 0 {
		if err := fprintf("Target state variable search (Table II)\n"); err != nil {
			return err
		}
		if err := fprintf("%-10s %8s %8s %8s %8s %8s\n",
			"Controller", "KSVL", "Added", "ESVL", "TSVL", "Ratio"); err != nil {
			return err
		}
		for _, g := range r.Groups {
			if err := fprintf("%-10s %8d %8d %8d %8d %7.1f%%\n",
				g.Group.Name, g.KSVLCount, g.AddedCount, g.ESVLCount,
				g.TSVLCount, g.Ratio*100); err != nil {
				return err
			}
		}
		if err := fprintf("\n"); err != nil {
			return err
		}
		for _, g := range r.Groups {
			if err := fprintf("%s TSVL: %s\n", g.Group.Name,
				strings.Join(g.TSVL, ", ")); err != nil {
				return err
			}
		}
		if err := fprintf("\n"); err != nil {
			return err
		}
	}

	if r.Roll != nil {
		if err := fprintf("Roll-control ESVL (%d variables kept)\n", len(r.Roll.Names)); err != nil {
			return err
		}
		if err := fprintf("roll TSVL: %s\n\n", strings.Join(r.Roll.TSVL, ", ")); err != nil {
			return err
		}
	}

	for _, e := range r.Exploits {
		if err := fprintf("exploit %-14s learner=%-9s bestReturn=%8.2f evalDev=%6.2f m crashed=%v detected=%v\n",
			e.Variable, e.Learner, e.Train.BestReturn, e.EvalDeviation,
			e.EvalCrashed, e.EvalDetected); err != nil {
			return err
		}
	}
	return nil
}

// HeatmapText renders the roll correlation matrix as a text heat map in
// dendrogram order (the Figure 5 view). Cell glyphs bucket |r|.
func (r *RollAnalysis) HeatmapText(w io.Writer) error {
	order := r.Order
	if len(order) == 0 {
		order = make([]int, len(r.Names))
		for i := range order {
			order[i] = i
		}
	}
	// Header with short indices.
	if _, err := fmt.Fprintf(w, "%-14s", ""); err != nil {
		return err
	}
	for range order {
		if _, err := fmt.Fprint(w, " "); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, i := range order {
		if _, err := fmt.Fprintf(w, "%-14s", trimName(r.Names[i])); err != nil {
			return err
		}
		for _, j := range order {
			if _, err := fmt.Fprint(w, glyph(r.Corr[i][j])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func glyph(r float64) string {
	a := r
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 0.8:
		if r < 0 {
			return "▓"
		}
		return "█"
	case a >= 0.5:
		return "▒"
	case a >= 0.2:
		return "░"
	default:
		return "·"
	}
}

func trimName(n string) string {
	if len(n) > 13 {
		return n[:13]
	}
	return n
}
