package defense

import (
	"math"
	"math/rand"
	"testing"
)

func benignVarTraces(n int, seed int64) ([]string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"CMD.Roll", "PIDR.INTEG"}
	cmd := make([]float64, n)
	integ := make([]float64, n)
	for i := 0; i < n; i++ {
		cmd[i] = 0.05*math.Sin(float64(i)*0.01) + 0.005*rng.NormFloat64()
		integ[i] = 0.02*math.Cos(float64(i)*0.007) + 0.002*rng.NormFloat64()
	}
	return names, [][]float64{cmd, integ}
}

func TestVariableMonitorTrainValidation(t *testing.T) {
	m := NewVariableMonitor()
	if m.Fitted() {
		t.Error("unfitted monitor reports fitted")
	}
	if err := m.Train(nil, nil); err == nil {
		t.Error("empty training accepted")
	}
	if err := m.Train([]string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("tiny series accepted")
	}
	if err := m.Train([]string{"a", "b"}, [][]float64{make([]float64, 100), make([]float64, 50)}); err == nil {
		t.Error("ragged series accepted")
	}
	names, series := benignVarTraces(1000, 1)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() || len(m.Names()) != 2 {
		t.Error("fit state wrong")
	}
}

func TestVariableMonitorBenignQuiet(t *testing.T) {
	m := NewVariableMonitor()
	names, series := benignVarTraces(2000, 2)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	_, fresh := benignVarTraces(2000, 3)
	for i := 0; i < 2000; i++ {
		if v := m.Observe([]float64{fresh[0][i], fresh[1][i]}); v.Alarm {
			t.Fatalf("false alarm at sample %d (stat %v)", i, v.Stat)
		}
	}
}

func TestVariableMonitorCatchesRamp(t *testing.T) {
	// The manipulation that evades the system-level CI monitor: a slow
	// ramp on the command cell. At the variable level it exits the benign
	// envelope and is caught.
	m := NewVariableMonitor()
	names, series := benignVarTraces(2000, 4)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	alarmed := false
	for i := 0; i < 4000; i++ {
		cmd := 0.05*math.Sin(float64(i)*0.01) + 0.0436*float64(i)/400 // +2.5°/s ramp
		if v := m.Observe([]float64{cmd, 0}); v.Alarm {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Fatal("ramp manipulation not caught at the variable level")
	}
	if m.AlarmedVariable() != "CMD.Roll" {
		t.Errorf("alarmed variable = %q, want CMD.Roll", m.AlarmedVariable())
	}
}

func TestVariableMonitorCatchesJump(t *testing.T) {
	// A single-step jump violates the per-sample delta envelope even if
	// the value itself stays in range.
	m := NewVariableMonitor()
	m.Debounce = 1
	names, series := benignVarTraces(2000, 5)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	m.Observe([]float64{0.0, 0.0})
	v := m.Observe([]float64{0.05, 0.0}) // in value range, huge delta
	if !v.Alarm {
		t.Errorf("delta jump not caught (stat %v)", v.Stat)
	}
}

func TestVariableMonitorDebounce(t *testing.T) {
	m := NewVariableMonitor()
	m.Debounce = 5
	names, series := benignVarTraces(1000, 6)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	// 3 violating samples then recovery: no alarm.
	for i := 0; i < 3; i++ {
		if v := m.Observe([]float64{10, 0}); v.Alarm {
			t.Fatal("alarm before debounce elapsed")
		}
	}
	for i := 0; i < 10; i++ {
		if v := m.Observe(series[0][i : i+2][:1]); v.Alarm && i == 0 {
			_ = v
		}
	}
	m.Reset()
	if m.AlarmedVariable() != "" {
		t.Error("Reset did not clear alarm state")
	}
}

func TestVariableMonitorObserveGuards(t *testing.T) {
	m := NewVariableMonitor()
	// Unfitted: inert.
	if v := m.Observe([]float64{1}); v.Alarm || v.Stat != 0 {
		t.Error("unfitted monitor produced a verdict")
	}
	names, series := benignVarTraces(1000, 7)
	if err := m.Train(names, series); err != nil {
		t.Fatal(err)
	}
	// Wrong width: inert.
	if v := m.Observe([]float64{1}); v.Alarm || v.Stat != 0 {
		t.Error("mismatched sample width produced a verdict")
	}
}
