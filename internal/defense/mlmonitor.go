package defense

import (
	"fmt"
	"math"

	"github.com/ares-cps/ares/internal/stats"
)

// MLSample is one observation for the ML output monitor: the rate
// controller's target and measurement plus the control output it actually
// produced.
type MLSample struct {
	// Target and Actual are the controller's input pair (rad/s).
	Target, Actual float64
	// Output is the controller's produced output (torque fraction).
	Output float64
}

// MLMonitor approximates the RAID'21 monitor: a model trained on benign
// flights predicts the controller output from its inputs, and the smoothed
// "control output distance" |predicted − actual| is compared to the benign
// error bound (0.01 in the paper's Figure 7).
//
// The paper's monitor is a small DNN; the numerical function a rate PID
// computes is piecewise linear in (error, error-rate, error-integral), so a
// linear model over those features reproduces the same detection behavior.
type MLMonitor struct {
	// Threshold is the benign-error upper bound (0.01 in the paper).
	Threshold float64
	// Smoothing is the EMA factor applied to the raw distance.
	Smoothing float64
	// DT is the controller period used to build derivative/integral
	// features.
	DT float64
	// Scale normalizes the raw distance into the paper's units; Train
	// calibrates it so the training flight's peak distance sits at half
	// the threshold.
	Scale float64

	coef [4]float64 // intercept, err, errDot, errInt
	fit  bool

	// Runtime feature state mirrors the controller's internal filters.
	integ    float64
	lastErr  float64
	haveLast bool
	dist     float64
}

// NewMLMonitor creates the monitor with the paper's 0.01 threshold.
func NewMLMonitor(dt float64) *MLMonitor {
	return &MLMonitor{Threshold: 0.01, Smoothing: 0.05, DT: dt, Scale: 1}
}

// Train fits the output predictor on a benign trace.
func (m *MLMonitor) Train(trace []MLSample) error {
	if len(trace) < 32 {
		return fmt.Errorf("defense: ML monitor training needs ≥32 samples, got %d", len(trace))
	}
	n := len(trace)
	errF := make([]float64, n)
	dotF := make([]float64, n)
	intF := make([]float64, n)
	y := make([]float64, n)
	integ, last := 0.0, 0.0
	for i, s := range trace {
		e := s.Target - s.Actual
		integ += e * m.DT
		d := 0.0
		if i > 0 {
			d = (e - last) / m.DT
		}
		last = e
		errF[i], dotF[i], intF[i] = e, d, integ
		y[i] = s.Output
	}
	res, err := stats.OLS(y, [][]float64{errF, dotF, intF}, []string{"e", "de", "ie"})
	if err != nil {
		return fmt.Errorf("defense: ML monitor fit: %w", err)
	}
	copy(m.coef[:], res.Coef)
	m.fit = true

	// Calibrate Scale on the training flight: its peak smoothed distance
	// defines half the benign error bound, exactly how a deployed
	// monitor's threshold is fit to benign runs.
	m.Scale = 1
	m.Reset()
	maxDist := 0.0
	for _, s := range trace {
		if v := m.Observe(s); v.Stat > maxDist {
			maxDist = v.Stat
		}
	}
	if maxDist > 0 {
		m.Scale = (m.Threshold / 2) / maxDist
	}
	m.Reset()
	return nil
}

// Fitted reports whether Train has run.
func (m *MLMonitor) Fitted() bool { return m.fit }

// Observe consumes one sample and returns the smoothed control output
// distance and alarm decision.
func (m *MLMonitor) Observe(s MLSample) Verdict {
	e := s.Target - s.Actual
	m.integ += e * m.DT
	d := 0.0
	if m.haveLast {
		d = (e - m.lastErr) / m.DT
	}
	m.lastErr = e
	m.haveLast = true

	pred := m.coef[0] + m.coef[1]*e + m.coef[2]*d + m.coef[3]*m.integ
	raw := math.Abs(pred-s.Output) * m.Scale
	m.dist += (raw - m.dist) * m.Smoothing
	return Verdict{Stat: m.dist, Alarm: m.dist > m.Threshold}
}

// Reset clears runtime state but keeps the trained model.
func (m *MLMonitor) Reset() {
	m.integ = 0
	m.lastErr = 0
	m.haveLast = false
	m.dist = 0
}

// EKFResidual is the SAVIOR-style sensor-estimation monitor: a CUSUM
// statistic over the residual between the sensed state (e.g. ATT.Roll) and
// the EKF-estimated state (EKF1.Roll). Because both values are driven by
// the same physical motion, controller-level manipulations that move the
// *vehicle* consistently leave this residual near zero — the blind spot the
// Figure 8 experiment demonstrates.
type EKFResidual struct {
	// Drift is the CUSUM allowance b: |residual| below this decays the
	// statistic.
	Drift float64
	// Threshold is the CUSUM alarm level τ.
	Threshold float64

	score float64
}

// NewEKFResidual creates the monitor with drift/threshold tuned for radian
// attitude residuals sampled at the 400 Hz loop rate: the CUSUM tolerates
// residuals below ~5.7° (benign estimation error during maneuvers peaks
// around there) and needs roughly half a second of sustained excess to
// alarm — fast against a real sensor-spoof residual, quiet on transients.
func NewEKFResidual() *EKFResidual {
	return &EKFResidual{Drift: 0.1, Threshold: 20}
}

// Observe consumes one (sensed, estimated) pair.
func (m *EKFResidual) Observe(sensed, estimated float64) Verdict {
	res := math.Abs(sensed - estimated)
	m.score = math.Max(0, m.score+res-m.Drift)
	return Verdict{Stat: m.score, Alarm: m.score > m.Threshold}
}

// Residual returns the current CUSUM score.
func (m *EKFResidual) Residual() float64 { return m.score }

// Reset clears the CUSUM state.
func (m *EKFResidual) Reset() { m.score = 0 }
