package defense

import (
	"testing"

	"github.com/ares-cps/ares/internal/vars"
)

func fittedGuard(t *testing.T, seed int64) *RecoveryGuard {
	t.Helper()
	ci := NewControlInvariants()
	if err := ci.Identify(benignCITrace(4000, seed)); err != nil {
		t.Fatal(err)
	}
	return NewRecoveryGuard(ci)
}

// engage drives the guard's detector over threshold with a grossly
// divergent attitude trace.
func engage(t *testing.T, g *RecoveryGuard) {
	t.Helper()
	for i := 0; i < 20000; i++ {
		if v := g.Observe(CISample{Roll: 1}, float64(i)*0.01); v.Alarm {
			return
		}
	}
	t.Fatal("guard never engaged on divergent trace")
}

func TestRecoveryGuardEngagesOnFirstAlarm(t *testing.T) {
	g := fittedGuard(t, 31)
	if !g.Fitted() {
		t.Fatal("guard with identified detector reports unfitted")
	}
	for i, s := range benignCITrace(500, 32) {
		if v := g.Observe(s, float64(i)*0.0025); v.Alarm {
			t.Fatalf("benign sample %d raised alarm", i)
		}
	}
	if g.Engaged() {
		t.Fatal("guard engaged on benign trace")
	}
	engage(t, g)
	if !g.Engaged() || g.EngagedAt() <= 0 {
		t.Fatalf("engaged=%v at=%v after alarm", g.Engaged(), g.EngagedAt())
	}
	// Engagement is latched: later quiet samples do not lift it.
	at := g.EngagedAt()
	g.Observe(CISample{}, 100)
	if !g.Engaged() || g.EngagedAt() != at {
		t.Error("engagement did not latch")
	}
}

func TestRecoveryGuardApply(t *testing.T) {
	g := fittedGuard(t, 33)
	roll, pitch, integ := 0.5, -0.5, 1.0
	refs := RecoveryRefs{
		Commands: []vars.Ref{
			{Name: "CMD.Roll", Ptr: &roll},
			{Name: "CMD.Pitch", Ptr: &pitch},
		},
		Integrators: []vars.Ref{{Name: "PIDR.INTEG", Ptr: &integ}},
	}

	g.Apply(refs)
	if roll != 0.5 || pitch != -0.5 || integ != 1.0 {
		t.Fatalf("disengaged guard actuated: roll=%v pitch=%v integ=%v", roll, pitch, integ)
	}

	engage(t, g)
	g.Apply(refs)
	if roll != g.ClampAngle || pitch != -g.ClampAngle {
		t.Errorf("commands not clamped to ±%v: roll=%v pitch=%v", g.ClampAngle, roll, pitch)
	}
	if integ != g.IntegratorDecay {
		t.Errorf("integrator not bled: %v, want %v", integ, g.IntegratorDecay)
	}
	// In-envelope commands pass through untouched.
	roll = 0.05
	g.Apply(refs)
	if roll != 0.05 {
		t.Errorf("in-envelope command rewritten to %v", roll)
	}
}

func TestRecoveryGuardCloneAndReset(t *testing.T) {
	g := fittedGuard(t, 34)
	engage(t, g)

	c := g.Clone()
	if c.Engaged() {
		t.Error("clone inherited engagement")
	}
	if !c.Fitted() {
		t.Error("clone lost the identified model")
	}
	if c.ClampAngle != g.ClampAngle || c.IntegratorDecay != g.IntegratorDecay {
		t.Error("clone lost the envelope configuration")
	}
	engage(t, c) // clone's runtime state is independent but detects the same

	g.Reset()
	if g.Engaged() || g.EngagedAt() != 0 {
		t.Error("reset did not clear engagement")
	}
	engage(t, g) // and the guard re-arms after reset
}

func TestRecoveryGuardValidate(t *testing.T) {
	if err := fittedGuard(t, 35).Validate(); err != nil {
		t.Errorf("valid guard rejected: %v", err)
	}
	if err := (&RecoveryGuard{ClampAngle: 0.1, IntegratorDecay: 0.9}).Validate(); err == nil {
		t.Error("detector-less guard validated")
	}
	g := fittedGuard(t, 36)
	g.ClampAngle = 0
	if err := g.Validate(); err == nil {
		t.Error("zero clamp angle validated")
	}
	g = fittedGuard(t, 37)
	g.IntegratorDecay = 1
	if err := g.Validate(); err == nil {
		t.Error("non-contractive integrator decay validated")
	}
}
