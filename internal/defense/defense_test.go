package defense

import (
	"math"
	"math/rand"
	"testing"
)

// benignCITrace simulates a vehicle whose attitude follows its target with
// first-order lag plus small noise — the behavior the CI model identifies.
func benignCITrace(n int, seed int64) []CISample {
	rng := rand.New(rand.NewSource(seed))
	var roll, pitch, yaw float64
	out := make([]CISample, n)
	for i := range out {
		des := CISample{
			DesRoll:  0.1 * math.Sin(float64(i)*0.01),
			DesPitch: 0.05 * math.Cos(float64(i)*0.013),
			DesYaw:   0,
		}
		roll += 0.05*(des.DesRoll-roll) + 0.001*rng.NormFloat64()
		pitch += 0.05*(des.DesPitch-pitch) + 0.001*rng.NormFloat64()
		yaw += 0.05*(des.DesYaw-yaw) + 0.001*rng.NormFloat64()
		out[i] = CISample{
			Roll: roll, Pitch: pitch, Yaw: yaw,
			DesRoll: des.DesRoll, DesPitch: des.DesPitch, DesYaw: des.DesYaw,
		}
	}
	return out
}

func TestControlInvariantsIdentify(t *testing.T) {
	ci := NewControlInvariants()
	if ci.Fitted() {
		t.Error("unfitted monitor reports fitted")
	}
	if err := ci.Identify(benignCITrace(4000, 1)); err != nil {
		t.Fatal(err)
	}
	if !ci.Fitted() {
		t.Error("fitted monitor reports unfitted")
	}
	if err := ci.Identify(benignCITrace(10, 1)); err == nil {
		t.Error("tiny trace accepted")
	}
}

func TestControlInvariantsBenignStaysBelowThreshold(t *testing.T) {
	ci := NewControlInvariants()
	if err := ci.Identify(benignCITrace(4000, 2)); err != nil {
		t.Fatal(err)
	}
	maxStat := 0.0
	for _, s := range benignCITrace(8000, 3) {
		v := ci.Observe(s)
		if v.Alarm {
			t.Fatalf("false alarm on benign flight at stat %v", v.Stat)
		}
		if v.Stat > maxStat {
			maxStat = v.Stat
		}
	}
	// Calibration puts benign peaks around threshold/4.
	if maxStat <= 0 || maxStat > ci.Threshold {
		t.Errorf("benign max stat = %v", maxStat)
	}
}

func TestControlInvariantsDetectsNaiveAttack(t *testing.T) {
	ci := NewControlInvariants()
	if err := ci.Identify(benignCITrace(4000, 4)); err != nil {
		t.Fatal(err)
	}
	// Naive attack: roll jumps to 30° (0.52 rad) while the model expects
	// lagged tracking of a small target.
	trace := benignCITrace(2000, 5)
	alarmed := false
	for i, s := range trace {
		if i > 1000 {
			s.Roll = 0.52
		}
		if v := ci.Observe(s); v.Alarm {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Error("naive 30° roll attack not detected")
	}
}

func TestControlInvariantsGradualAttackEvades(t *testing.T) {
	// The ARES-style manipulation: the *desired* and actual roll move
	// together slowly, so the one-step prediction error stays tiny.
	ci := NewControlInvariants()
	if err := ci.Identify(benignCITrace(4000, 6)); err != nil {
		t.Fatal(err)
	}
	var roll float64
	for i := 0; i < 4000; i++ {
		target := float64(i) * 0.00003 // slow coordinated ramp
		roll += 0.05 * (target - roll)
		v := ci.Observe(CISample{Roll: roll, DesRoll: target})
		if v.Alarm {
			t.Fatalf("gradual coordinated manipulation detected at step %d", i)
		}
	}
}

func TestControlInvariantsReset(t *testing.T) {
	ci := NewControlInvariants()
	if err := ci.Identify(benignCITrace(2000, 7)); err != nil {
		t.Fatal(err)
	}
	for _, s := range benignCITrace(100, 8) {
		ci.Observe(s)
	}
	ci.Reset()
	v := ci.Observe(CISample{})
	if v.Stat != 0 {
		t.Errorf("stat after reset = %v", v.Stat)
	}
}

func benignMLTrace(n int, dt float64, seed int64) []MLSample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MLSample, n)
	integ, last := 0.0, 0.0
	for i := range out {
		target := 0.5 * math.Sin(float64(i)*0.01)
		actual := target - 0.1*math.Sin(float64(i)*0.011) + 0.01*rng.NormFloat64()
		e := target - actual
		integ += e * dt
		d := (e - last) / dt
		last = e
		// A PID-like output with known gains plus small noise.
		out[i] = MLSample{
			Target: target,
			Actual: actual,
			Output: 0.135*e + 0.09*integ + 0.004*d + 0.0005*rng.NormFloat64(),
		}
	}
	return out
}

func TestMLMonitorTrainAndBenign(t *testing.T) {
	const dt = 1.0 / 400
	m := NewMLMonitor(dt)
	if m.Fitted() {
		t.Error("unfitted monitor reports fitted")
	}
	if err := m.Train(benignMLTrace(4000, dt, 11)); err != nil {
		t.Fatal(err)
	}
	if !m.Fitted() {
		t.Error("fitted monitor reports unfitted")
	}
	for _, s := range benignMLTrace(4000, dt, 12) {
		if v := m.Observe(s); v.Alarm {
			t.Fatalf("false alarm on benign outputs at distance %v", v.Stat)
		}
	}
	if err := NewMLMonitor(dt).Train(nil); err == nil {
		t.Error("empty training trace accepted")
	}
}

func TestMLMonitorDetectsOutputTampering(t *testing.T) {
	const dt = 1.0 / 400
	m := NewMLMonitor(dt)
	if err := m.Train(benignMLTrace(4000, dt, 13)); err != nil {
		t.Fatal(err)
	}
	// Naive attack: the controller output is overwritten with a large
	// constant inconsistent with the inputs.
	alarmed := false
	for i, s := range benignMLTrace(2000, dt, 14) {
		if i > 500 {
			s.Output += 0.3
		}
		if v := m.Observe(s); v.Alarm {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Error("output tampering not detected")
	}
}

func TestMLMonitorGradualScalerEvades(t *testing.T) {
	// The Figure 7 attack: a slowly ramped output scaler keeps the
	// distance inside the benign band.
	const dt = 1.0 / 400
	m := NewMLMonitor(dt)
	if err := m.Train(benignMLTrace(4000, dt, 15)); err != nil {
		t.Fatal(err)
	}
	maxStat := 0.0
	for i, s := range benignMLTrace(4000, dt, 16) {
		scale := 1 + 0.000002*float64(i) // creeps to 1.008
		s.Output *= scale
		v := m.Observe(s)
		if v.Stat > maxStat {
			maxStat = v.Stat
		}
		if v.Alarm {
			t.Fatalf("gradual scaler detected at step %d (stat %v)", i, v.Stat)
		}
	}
	if maxStat == 0 {
		t.Error("monitor saw no distance at all")
	}
}

func TestEKFResidualCUSUM(t *testing.T) {
	m := NewEKFResidual()
	// Agreeing signals: score stays at zero.
	for i := 0; i < 1000; i++ {
		if v := m.Observe(0.1, 0.1+0.001*math.Sin(float64(i))); v.Alarm {
			t.Fatal("false alarm on agreeing signals")
		}
	}
	if m.Residual() > 0.01 {
		t.Errorf("score accumulated on agreeing signals: %v", m.Residual())
	}
	// Diverging signals (sensor spoofing): alarm.
	alarmed := false
	for i := 0; i < 100; i++ {
		if v := m.Observe(0.5, 0.1); v.Alarm {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Error("persistent 0.4 rad residual not detected")
	}
	m.Reset()
	if m.Residual() != 0 {
		t.Error("reset did not clear score")
	}
}

func TestEKFResidualBlindToConsistentMotion(t *testing.T) {
	// The Figure 8 property: when a controller-level manipulation moves
	// the actual vehicle, the sensors and the EKF agree with each other
	// (both track the real motion), so the residual stays near zero even
	// during violent oscillation.
	m := NewEKFResidual()
	for i := 0; i < 4000; i++ {
		truth := 0.4 * math.Sin(float64(i)*0.05) // aggressive roll swings
		sensed := truth + 0.002*math.Sin(float64(i)*0.3)
		estimated := truth - 0.002*math.Cos(float64(i)*0.21)
		if v := m.Observe(sensed, estimated); v.Alarm {
			t.Fatalf("alarm on consistent motion at step %d", i)
		}
	}
}

func TestThresholdSweep(t *testing.T) {
	benign := []float64{10, 20, 30, 40, 50}
	attack := []float64{35, 45, 55, 65, 75}
	points := ThresholdSweep(benign, attack, []float64{60, 30, 5})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// High threshold: no FP, some TP.
	if points[0].FPRate != 0 || points[0].TPRate != 0.4 {
		t.Errorf("th=60: %+v", points[0])
	}
	// Mid threshold: FP appears as TP improves — the Figure 9 trade-off.
	if points[1].FPRate != 0.4 || points[1].TPRate != 1.0 {
		t.Errorf("th=30: %+v", points[1])
	}
	// Tiny threshold: everything alarms.
	if points[2].FPRate != 1 || points[2].TPRate != 1 {
		t.Errorf("th=5: %+v", points[2])
	}
	// Degenerate inputs do not panic or divide by zero.
	empty := ThresholdSweep(nil, nil, []float64{1})
	if empty[0].FPRate != 0 || empty[0].TPRate != 0 {
		t.Errorf("empty sweep: %+v", empty[0])
	}
}
