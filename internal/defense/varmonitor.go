package defense

import (
	"fmt"
	"math"
)

// VariableMonitor is the countermeasure the paper's Discussion proposes:
// "RAVs need ... fine-grained monitors in the variable level rather than the
// system level". It learns per-variable envelopes — the absolute value range
// and the per-sample update range — for a selected set of state variables
// (e.g. the TSVL that ARES itself identifies) from benign traces, and alarms
// when a watched variable leaves its envelope for a debounce window.
//
// Because it watches the *variables* rather than the vehicle's physical
// behavior, it catches the self-consistent manipulations that evade the
// system-level monitors: a ramped command cell leaves its benign value range
// long before the vehicle's tracking behavior looks anomalous.
type VariableMonitor struct {
	// Margin widens the learned envelopes (0.5 = 50% beyond the benign
	// extremes, measured in units of the benign range).
	Margin float64
	// Debounce is how many consecutive out-of-envelope samples are needed
	// to alarm; transients shorter than this are tolerated.
	Debounce int

	names      []string
	lo, hi     []float64
	dlo, dhi   []float64
	last       []float64
	haveLast   bool
	violations int
	fit        bool
	// alarmedVar remembers which variable triggered.
	alarmedVar string
}

// NewVariableMonitor creates the monitor with a 50% envelope margin and a
// 20-sample (50 ms at 400 Hz) debounce.
func NewVariableMonitor() *VariableMonitor {
	return &VariableMonitor{Margin: 0.5, Debounce: 20}
}

// Train learns the envelopes from benign traces: one series per watched
// variable, all of equal length.
func (m *VariableMonitor) Train(names []string, series [][]float64) error {
	if len(names) == 0 || len(names) != len(series) {
		return fmt.Errorf("defense: variable monitor needs matching names/series, got %d/%d",
			len(names), len(series))
	}
	n := len(series[0])
	if n < 16 {
		return fmt.Errorf("defense: variable monitor training needs ≥16 samples, got %d", n)
	}
	m.names = append([]string{}, names...)
	k := len(names)
	m.lo = make([]float64, k)
	m.hi = make([]float64, k)
	m.dlo = make([]float64, k)
	m.dhi = make([]float64, k)
	for i, s := range series {
		if len(s) != n {
			return fmt.Errorf("defense: series %q has %d samples, want %d", names[i], len(s), n)
		}
		lo, hi := s[0], s[0]
		dlo, dhi := 0.0, 0.0
		for j, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			if j > 0 {
				d := v - s[j-1]
				dlo = math.Min(dlo, d)
				dhi = math.Max(dhi, d)
			}
		}
		span := hi - lo
		if span == 0 {
			span = math.Max(math.Abs(hi), 1e-9)
		}
		dspan := dhi - dlo
		if dspan == 0 {
			dspan = 1e-9
		}
		m.lo[i] = lo - m.Margin*span
		m.hi[i] = hi + m.Margin*span
		m.dlo[i] = dlo - m.Margin*dspan
		m.dhi[i] = dhi + m.Margin*dspan
	}
	m.fit = true
	m.Reset()
	return nil
}

// Fitted reports whether Train has run.
func (m *VariableMonitor) Fitted() bool { return m.fit }

// Names returns the watched variable names.
func (m *VariableMonitor) Names() []string { return append([]string{}, m.names...) }

// AlarmedVariable returns the variable that first tripped the monitor.
func (m *VariableMonitor) AlarmedVariable() string { return m.alarmedVar }

// Observe consumes one synchronized sample of all watched variables. The
// statistic is the worst normalized envelope excess across variables.
func (m *VariableMonitor) Observe(values []float64) Verdict {
	if !m.fit || len(values) != len(m.names) {
		return Verdict{}
	}
	worst := 0.0
	worstVar := ""
	for i, v := range values {
		span := m.hi[i] - m.lo[i]
		if excess := envelopeExcess(v, m.lo[i], m.hi[i], span); excess > worst {
			worst = excess
			worstVar = m.names[i]
		}
		if m.haveLast {
			d := v - m.last[i]
			dspan := m.dhi[i] - m.dlo[i]
			if excess := envelopeExcess(d, m.dlo[i], m.dhi[i], dspan); excess > worst {
				worst = excess
				worstVar = m.names[i]
			}
		}
	}
	if m.last == nil {
		m.last = make([]float64, len(values))
	}
	copy(m.last, values)
	m.haveLast = true

	if worst > 0 {
		m.violations++
	} else {
		m.violations = 0
	}
	alarm := m.violations >= m.Debounce
	if alarm && m.alarmedVar == "" {
		m.alarmedVar = worstVar
	}
	return Verdict{Stat: worst, Alarm: alarm}
}

// Reset clears runtime state but keeps the learned envelopes.
func (m *VariableMonitor) Reset() {
	m.last = nil
	m.haveLast = false
	m.violations = 0
	m.alarmedVar = ""
}

// envelopeExcess returns how far v lies outside [lo, hi], normalized by
// span; 0 when inside.
func envelopeExcess(v, lo, hi, span float64) float64 {
	if span <= 0 {
		span = 1e-9
	}
	switch {
	case v < lo:
		return (lo - v) / span
	case v > hi:
		return (v - hi) / span
	default:
		return 0
	}
}
