// Package defense implements the three RAV runtime monitors the paper
// evaluates ARES against:
//
//   - ControlInvariants — the control-invariants detector of Choi et al.
//     (CCS'18): a system-identified linear state model whose cumulative
//     prediction error over a 1024-step window at 400 Hz is compared to a
//     threshold of 400 000 (the paper's Figure 6 configuration).
//   - MLMonitor — the learning-based controller-output monitor of Ding et
//     al. (RAID'21): a trained model predicts the PID output and the
//     "control output distance" between predicted and actual output is
//     compared to a benign-error bound of 0.01 (Figure 7).
//   - EKFResidual — the SAVIOR-style physical-invariants monitor of
//     Quinonez et al. (USENIX Sec'20): a CUSUM statistic over the residual
//     between sensed and EKF-estimated state (Figure 8).
//
// Each monitor exposes the detection statistic itself so the experiments
// can plot it, and a Verdict carrying the alarm decision.
package defense

import (
	"fmt"
)

// Verdict is one monitoring decision.
type Verdict struct {
	// Stat is the current detection statistic (cumulative error, output
	// distance, or CUSUM score depending on the monitor).
	Stat float64
	// Alarm reports whether the statistic exceeds the threshold.
	Alarm bool
}

// CISample is one observation for the control-invariants monitor: the
// vehicle attitude and the attitude the controller was told to reach.
type CISample struct {
	Roll, Pitch, Yaw          float64
	DesRoll, DesPitch, DesYaw float64
}

// ControlInvariants is the CCS'18-style monitor. A per-axis linear state
// model x_{t+1} = a·x_t + b·u_t + c is identified from benign flights; at
// runtime the monitor *simulates the model in parallel* with the vehicle
// (as Choi et al.'s monitor runs the identified control invariants
// alongside the firmware) and accumulates the squared divergence between
// the model state and the observed state over a sliding window.
//
// A small observer gain re-anchors the model toward the observation so
// benign model mismatch cannot drift without bound; an attack that pushes
// the vehicle away from model-consistent behavior outruns that gain and
// accumulates error across the whole window.
type ControlInvariants struct {
	// Window is the sliding-window length (1024 steps ≈ 2.5 s at 400 Hz).
	Window int
	// Threshold is the alarm level (400 000 in the paper).
	Threshold float64
	// Scale converts squared divergence into the paper's cumulative-
	// error units; calibrated so benign flights peak well below the
	// threshold.
	Scale float64
	// ObserverGain is the per-step re-anchoring factor κ.
	ObserverGain float64

	// Per-axis tracking-lag coefficients α for roll, pitch, yaw.
	Alpha [3]float64
	fit   bool

	model   [3]float64 // parallel model state x̂
	haveRef bool
	errs    []float64 // ring buffer of per-step errors
	head    int
	count   int
	cum     float64
}

// NewControlInvariants creates the monitor with the paper's configuration.
func NewControlInvariants() *ControlInvariants {
	return &ControlInvariants{
		Window:       1024,
		Threshold:    400000,
		Scale:        1,
		ObserverGain: 0.002,
	}
}

// Identify fits the per-axis tracking models from a benign trace, then
// calibrates Scale so the maximum benign cumulative error sits at about a
// quarter of the threshold — matching the paper's Figure 6 where benign
// runs peak near 100 000 against the 400 000 threshold.
//
// Each axis is modeled as a first-order lag toward its commanded value:
// x̂_{t+1} = x̂_t + α·(u_t − x̂_t). The constrained form (rather than a free
// AR fit) guarantees the model's steady state equals the command, so the
// statistic measures *tracking consistency* — exactly what the control
// invariant expresses — and is insensitive to sustained command offsets.
// The lag α is the least-squares solution of Δx = α·(u − x).
func (m *ControlInvariants) Identify(trace []CISample) error {
	if len(m.errs) != m.Window {
		m.errs = make([]float64, m.Window)
	}
	if len(trace) < 32 {
		return fmt.Errorf("defense: CI identification needs ≥32 samples, got %d", len(trace))
	}
	axes := []struct {
		cur, des func(CISample) float64
	}{
		{func(s CISample) float64 { return s.Roll }, func(s CISample) float64 { return s.DesRoll }},
		{func(s CISample) float64 { return s.Pitch }, func(s CISample) float64 { return s.DesPitch }},
		{func(s CISample) float64 { return s.Yaw }, func(s CISample) float64 { return s.DesYaw }},
	}
	for axis, ax := range axes {
		var num, den float64
		for i := 0; i+1 < len(trace); i++ {
			e := ax.des(trace[i]) - ax.cur(trace[i])
			dx := ax.cur(trace[i+1]) - ax.cur(trace[i])
			num += dx * e
			den += e * e
		}
		alpha := 0.0
		if den > 0 {
			alpha = num / den
		}
		if alpha < 0 {
			alpha = 0
		}
		if alpha > 1 {
			alpha = 1
		}
		m.Alpha[axis] = alpha
	}
	m.fit = true

	// Calibrate the scale on the training trace itself.
	m.Scale = 1
	m.Reset()
	maxCum := 0.0
	for _, s := range trace {
		v := m.Observe(s)
		if v.Stat > maxCum {
			maxCum = v.Stat
		}
	}
	if maxCum > 0 {
		m.Scale = (m.Threshold / 4) / maxCum
	}
	m.Reset()
	return nil
}

// Fitted reports whether Identify has run.
func (m *ControlInvariants) Fitted() bool { return m.fit }

// Observe consumes one sample and returns the cumulative windowed error and
// the alarm decision.
func (m *ControlInvariants) Observe(s CISample) Verdict {
	if len(m.errs) != m.Window {
		m.errs = make([]float64, m.Window)
	}
	obs := [3]float64{s.Roll, s.Pitch, s.Yaw}
	if !m.haveRef {
		m.model = obs
		m.haveRef = true
		return Verdict{}
	}
	// Divergence between the parallel model state and the observation.
	// Yaw is tracked but excluded from the error: during waypoint turns
	// the commanded yaw steps by up to 90° and a linear lag model cannot
	// represent the slew-limited response, so including yaw would let
	// benign corners dominate the statistic.
	stepErr := 0.0
	for i := 0; i < 2; i++ {
		d := obs[i] - m.model[i]
		if d < 0 {
			d = -d
		}
		stepErr += d
	}
	stepErr *= m.Scale

	// Advance the model toward the commanded value with the learned lag,
	// plus the small observer re-anchor.
	u := [3]float64{s.DesRoll, s.DesPitch, s.DesYaw}
	for i := range m.model {
		m.model[i] += m.Alpha[i]*(u[i]-m.model[i]) +
			m.ObserverGain*(obs[i]-m.model[i])
	}

	// Sliding-window accumulation.
	m.cum += stepErr - m.errs[m.head]
	m.errs[m.head] = stepErr
	m.head = (m.head + 1) % m.Window
	if m.count < m.Window {
		m.count++
	}
	return Verdict{Stat: m.cum, Alarm: m.cum > m.Threshold}
}

// Clone returns an independent monitor with the same identified model and
// cleared runtime state. Observe mutates the receiver, so concurrent
// flights (e.g. parallel campaign jobs) must each run their own clone of a
// once-calibrated monitor rather than share it.
func (m *ControlInvariants) Clone() *ControlInvariants {
	c := &ControlInvariants{
		Window:       m.Window,
		Threshold:    m.Threshold,
		Scale:        m.Scale,
		ObserverGain: m.ObserverGain,
		Alpha:        m.Alpha,
		fit:          m.fit,
	}
	c.Reset()
	return c
}

// Reset clears runtime state but keeps the identified model.
func (m *ControlInvariants) Reset() {
	if len(m.errs) != m.Window {
		m.errs = make([]float64, m.Window)
	}
	for i := range m.errs {
		m.errs[i] = 0
	}
	m.head, m.count = 0, 0
	m.cum = 0
	m.haveRef = false
	m.model = [3]float64{}
}
