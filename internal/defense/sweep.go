package defense

// SweepPoint is one row of a detection-threshold sweep: the false-positive
// and true-positive rates obtained at a given threshold, as in the paper's
// Figure 9b.
type SweepPoint struct {
	Threshold float64
	// FPRate is the fraction of benign missions whose maximum statistic
	// exceeded the threshold.
	FPRate float64
	// TPRate is the fraction of attack missions detected.
	TPRate float64
}

// ThresholdSweep evaluates candidate thresholds against the maximum
// detection statistic observed in each benign and attack mission.
func ThresholdSweep(benignMax, attackMax []float64, thresholds []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		fp := countAbove(benignMax, th)
		tp := countAbove(attackMax, th)
		p := SweepPoint{Threshold: th}
		if len(benignMax) > 0 {
			p.FPRate = float64(fp) / float64(len(benignMax))
		}
		if len(attackMax) > 0 {
			p.TPRate = float64(tp) / float64(len(attackMax))
		}
		out = append(out, p)
	}
	return out
}

func countAbove(xs []float64, th float64) int {
	n := 0
	for _, x := range xs {
		if x > th {
			n++
		}
	}
	return n
}
