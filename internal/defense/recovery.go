package defense

import (
	"fmt"

	"github.com/ares-cps/ares/internal/vars"
)

// RecoveryRefs are the live control cells a RecoveryGuard actuates while
// engaged. The guard itself stays firmware-agnostic — whoever runs the
// vehicle (the attack session, the RL environments) resolves the cells and
// hands the references over, exactly as monitors receive samples instead
// of a firmware handle.
type RecoveryRefs struct {
	// Commands are the attitude-command handoff cells (e.g. CMD.Roll,
	// CMD.Pitch) clamped into the conservative flight envelope.
	Commands []vars.Ref
	// Integrators are the stateful controller cells (e.g. PIDR.INTEG,
	// PIDP.INTEG) bled toward zero so a pumped integrator cannot keep
	// feeding the actuators after detection.
	Integrators []vars.Ref
}

// RecoveryGuard is the SpecGuard-style specification-aware recovery defense
// (Dash et al., CCS'24): instead of only *flagging* an attack the way the
// plain monitors do, it responds to a detection by switching the vehicle
// into a conservative recovery controller that keeps the mission
// specification satisfied — attitude commands are clamped to a safe
// envelope and attacker-pumped integrators are bled off, so the physical
// effect of a manipulation is bounded even though the manipulation itself
// continues.
//
// Detection reuses the control-invariants monitor (the guard wraps a fitted
// ControlInvariants clone); what is new is the recovery actuation. The
// guard is engaged at the first alarm and stays engaged for the rest of the
// flight — SpecGuard's "recovery until mission completion" mode — because
// an attacker who is still resident would simply resume the moment the
// clamps lift.
//
// Like the monitors, a guard instance carries per-flight runtime state:
// concurrent flights must use Clone.
type RecoveryGuard struct {
	// Detector is the fitted in-loop detector whose first alarm engages
	// recovery.
	Detector *ControlInvariants
	// ClampAngle bounds the absolute attitude command (radians) while
	// engaged. The default 0.3 rad (~17°) keeps enough authority for the
	// navigator to counter-steer back to the path — a tighter envelope
	// makes recovery *worse* than no defense, because the vehicle cannot
	// fight the attacked controller — while still denying the 0.4–0.8 rad
	// offsets the exploits need.
	ClampAngle float64
	// IntegratorDecay is the per-tick multiplicative bleed applied to the
	// integrator cells while engaged. It must be aggressive (default 0.5)
	// because a resident attacker re-pumps the cell every cycle: the bleed
	// runs once per tick after the attacker's write, so the effective
	// forcing is Value×IntegratorDecay.
	IntegratorDecay float64

	engaged   bool
	engagedAt float64
}

// NewRecoveryGuard wraps a fitted control-invariants detector in a recovery
// guard with the default conservative envelope.
func NewRecoveryGuard(det *ControlInvariants) *RecoveryGuard {
	return &RecoveryGuard{
		Detector:        det,
		ClampAngle:      0.3,
		IntegratorDecay: 0.5,
	}
}

// Observe feeds one sample to the wrapped detector and engages recovery on
// the first alarm. now is the flight time in seconds (recorded as the
// engagement time). The returned verdict is the detector's.
func (g *RecoveryGuard) Observe(s CISample, now float64) Verdict {
	if g.Detector == nil {
		return Verdict{}
	}
	v := g.Detector.Observe(s)
	if v.Alarm && !g.engaged {
		g.engaged = true
		g.engagedAt = now
	}
	return v
}

// Engaged reports whether recovery is active.
func (g *RecoveryGuard) Engaged() bool { return g.engaged }

// EngagedAt returns the flight time of the first alarm (0 if never).
func (g *RecoveryGuard) EngagedAt() float64 { return g.engagedAt }

// Apply actuates one recovery tick: clamp the command cells into the
// conservative envelope and bleed the integrators. It is a no-op until the
// guard engages, so callers can run it unconditionally every tick.
func (g *RecoveryGuard) Apply(refs RecoveryRefs) {
	if !g.engaged {
		return
	}
	clamp := g.ClampAngle
	for _, r := range refs.Commands {
		if v := r.Get(); v > clamp {
			r.Set(clamp)
		} else if v < -clamp {
			r.Set(-clamp)
		}
	}
	for _, r := range refs.Integrators {
		r.Set(r.Get() * g.IntegratorDecay)
	}
}

// Fitted reports whether the wrapped detector is identified.
func (g *RecoveryGuard) Fitted() bool {
	return g.Detector != nil && g.Detector.Fitted()
}

// Clone returns an independent guard sharing the identified model but with
// cleared runtime state, for concurrent flights.
func (g *RecoveryGuard) Clone() *RecoveryGuard {
	c := &RecoveryGuard{
		ClampAngle:      g.ClampAngle,
		IntegratorDecay: g.IntegratorDecay,
	}
	if g.Detector != nil {
		c.Detector = g.Detector.Clone()
	}
	return c
}

// Reset clears the engagement and the detector's runtime state, keeping the
// identified model.
func (g *RecoveryGuard) Reset() {
	g.engaged = false
	g.engagedAt = 0
	if g.Detector != nil {
		g.Detector.Reset()
	}
}

// Validate checks the guard's configuration without flying anything.
func (g *RecoveryGuard) Validate() error {
	if g.Detector == nil {
		return fmt.Errorf("defense: recovery guard needs a detector")
	}
	if g.ClampAngle <= 0 {
		return fmt.Errorf("defense: recovery guard needs a positive clamp angle")
	}
	if g.IntegratorDecay < 0 || g.IntegratorDecay >= 1 {
		return fmt.Errorf("defense: recovery integrator decay must be in [0,1)")
	}
	return nil
}
