package rl

import (
	"math"
	"testing"
)

// TestQLearnerKeyDistinctBins pins the packed-key contract the old string
// key ('a'+bin per dimension, one byte each) could not honour for large
// ObsBins: at ObsBins = 64 every bin of every dimension must map to its
// own key, with no wrapping or collisions.
func TestQLearnerKeyDistinctBins(t *testing.T) {
	q := NewQLearner([]float64{0, 0}, []float64{1, 1}, 3, -1, 1, 1)
	q.ObsBins = 64
	seen := make(map[uint64][2]int)
	for b0 := 0; b0 < 64; b0++ {
		for b1 := 0; b1 < 64; b1++ {
			// Observation landing exactly in (b0, b1): bin centers.
			obs := []float64{(float64(b0) + 0.5) / 64, (float64(b1) + 0.5) / 64}
			k := q.key(obs)
			if prev, dup := seen[k]; dup {
				t.Fatalf("key collision: bins (%d,%d) and %v share key %#x", b0, b1, prev, k)
			}
			seen[k] = [2]int{b0, b1}
		}
	}
	if len(seen) != 64*64 {
		t.Fatalf("distinct keys = %d, want %d", len(seen), 64*64)
	}
}

// TestQLearnerKeyNonPowerOfTwoBins: the bit width rounds up, so bins that
// are not a power of two still pack without collision.
func TestQLearnerKeyNonPowerOfTwoBins(t *testing.T) {
	q := NewQLearner([]float64{0}, []float64{1}, 2, -1, 1, 1)
	q.ObsBins = 27 // the first count the old byte key mangled into symbols
	seen := make(map[uint64]bool)
	for b := 0; b < 27; b++ {
		k := q.key([]float64{(float64(b) + 0.5) / 27})
		if seen[k] {
			t.Fatalf("bin %d collides", b)
		}
		seen[k] = true
	}
}

// TestQLearnerKeyCapacityPanics: an observation space that cannot pack
// into 64 bits must fail loudly instead of silently colliding.
func TestQLearnerKeyCapacityPanics(t *testing.T) {
	q := NewQLearner(nil, nil, 2, -1, 1, 1)
	q.ObsBins = 256           // 8 bits per dimension
	obs := make([]float64, 9) // 72 bits > 64
	defer func() {
		if recover() == nil {
			t.Fatal("oversized observation space did not panic")
		}
	}()
	q.key(obs)
}

// TestQLearnerStepAllocsZero gates the training hot path: once a state's
// action-value row exists, key packing, lookup, greedy selection and the
// Q-update allocate nothing per step.
func TestQLearnerStepAllocsZero(t *testing.T) {
	q := NewQLearner([]float64{-5}, []float64{5}, 5, -1, 1, 3)
	obs := []float64{0.7}
	next := []float64{0.8}
	q.values(q.key(obs)) // warm the visited rows
	q.values(q.key(next))

	if a := testing.AllocsPerRun(100, func() { q.Greedy(obs) }); a != 0 {
		t.Errorf("Greedy allocs/op = %v, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { q.sampleIndex(obs) }); a != 0 {
		t.Errorf("sampleIndex allocs/op = %v, want 0", a)
	}
	// One full Q-update step on visited states.
	if a := testing.AllocsPerRun(100, func() {
		ai := q.sampleIndex(obs)
		cur := q.values(q.key(obs))
		nv := q.values(q.key(next))
		best := nv[0]
		for _, v := range nv {
			if v > best {
				best = v
			}
		}
		cur[ai] += q.Alpha * (0.5 + q.Gamma*best - cur[ai])
	}); a != 0 {
		t.Errorf("Q-update step allocs/op = %v, want 0", a)
	}
}

// staticEnv is an allocation-free environment: Step reuses one observation
// slice, so any allocation measured in Train below belongs to the learner.
type staticEnv struct {
	x   float64
	obs []float64
}

func (e *staticEnv) Reset() []float64 {
	e.x = 0
	e.obs[0] = 0
	return e.obs
}

func (e *staticEnv) Step(a float64) ([]float64, float64, bool) {
	e.x += a / 10
	if e.x > 1 {
		e.x = 1
	} else if e.x < -1 {
		e.x = -1
	}
	e.obs[0] = e.x
	return e.obs, math.Abs(e.x), false
}

func (e *staticEnv) ObservationSize() int             { return 1 }
func (e *staticEnv) ActionBounds() (float64, float64) { return -1, 1 }

// TestQLearnerTrainAllocsBounded: a whole training episode over visited
// states costs a small constant number of allocations (the result struct
// and its preallocated returns slice), independent of step count.
func TestQLearnerTrainAllocsBounded(t *testing.T) {
	env := &staticEnv{obs: make([]float64, 1)}
	q := NewQLearner([]float64{-1}, []float64{1}, 5, -1, 1, 4)
	q.Train(env, 5, 200) // visit the whole reachable table
	allocs := testing.AllocsPerRun(10, func() {
		q.Train(env, 1, 1000)
	})
	if allocs > 4 {
		t.Errorf("Train(1 episode × 1000 steps) allocs/run = %v, want ≤ 4 "+
			"(per-step path must be allocation-free)", allocs)
	}
}

// TestQLearnerTableGrowth: the packed key is a pure representation change
// — binning, rng draws and update order are untouched — so the table
// holds one row per reachable discretized state, no more.
func TestQLearnerTableGrowth(t *testing.T) {
	env := newDriftEnv()
	q := NewQLearner([]float64{-5}, []float64{5}, 5, -1, 1, 9)
	q.Train(env, 50, 50)
	if q.TableSize() == 0 {
		t.Fatal("no states visited")
	}
	if q.TableSize() > q.ObsBins {
		t.Fatalf("table size %d exceeds the %d reachable 1-D bins", q.TableSize(), q.ObsBins)
	}
}
