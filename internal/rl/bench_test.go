package rl

import (
	"math"
	"testing"
)

// benchEnv is a cheap deterministic environment so the benchmark measures
// the learner, not the plant: one reused observation slice, no RNG.
type benchEnv struct {
	x   float64
	obs []float64
}

func (e *benchEnv) Reset() []float64 {
	e.x = 0
	e.obs[0] = 0
	return e.obs
}

func (e *benchEnv) Step(a float64) ([]float64, float64, bool) {
	e.x += a / 10
	if e.x > 5 {
		e.x = 5
	} else if e.x < -5 {
		e.x = -5
	}
	e.obs[0] = e.x
	return e.obs, math.Abs(e.x), false
}

func (e *benchEnv) ObservationSize() int             { return 1 }
func (e *benchEnv) ActionBounds() (float64, float64) { return -1, 1 }

// BenchmarkQLearnerTrain measures the tabular training loop — the Phase 2
// cost center under the campaign fan-out. The packed-uint64 table key keeps
// the per-step path allocation-free; b.ReportAllocs surfaces any
// regression directly in the committed baselines.
func BenchmarkQLearnerTrain(b *testing.B) {
	env := &benchEnv{obs: make([]float64, 1)}
	q := NewQLearner([]float64{-5}, []float64{5}, 7, -1, 1, 1)
	q.Train(env, 4, 250) // warm the reachable table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Train(env, 4, 250)
	}
}

// BenchmarkQLearnerGreedy isolates the key/lookup path.
func BenchmarkQLearnerGreedy(b *testing.B) {
	q := NewQLearner([]float64{-5, -5, -5}, []float64{5, 5, 5}, 7, -1, 1, 1)
	obs := []float64{0.3, -1.2, 4.4}
	q.values(q.key(obs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Greedy(obs)
	}
}
