package rl

import (
	"math"
	"testing"
)

// toyEnv is a deterministic environment whose dynamics depend on a per-env
// parameter, so lanes evolve (and finish) differently.
type toyEnv struct {
	gain  float64
	limit int
	state float64
	steps int
}

func (e *toyEnv) Reset() []float64 {
	e.state = 1
	e.steps = 0
	return []float64{e.state}
}

func (e *toyEnv) Step(action float64) ([]float64, float64, bool) {
	e.state = 0.9*e.state + e.gain*action
	e.steps++
	reward := -math.Abs(e.state - 0.5)
	done := e.steps >= e.limit || math.Abs(e.state) > 10
	return []float64{e.state}, reward, done
}

func (e *toyEnv) ObservationSize() int           { return 1 }
func (e *toyEnv) ActionBounds() (lo, hi float64) { return -1, 1 }

func episodesEqual(a, b Episode) bool {
	if a.Return != b.Return || a.Steps != b.Steps || len(a.Transitions) != len(b.Transitions) {
		return false
	}
	for i := range a.Transitions {
		ta, tb := a.Transitions[i], b.Transitions[i]
		if ta.Action != tb.Action || ta.Reward != tb.Reward || len(ta.Obs) != len(tb.Obs) {
			return false
		}
		for j := range ta.Obs {
			if ta.Obs[j] != tb.Obs[j] {
				return false
			}
		}
	}
	return true
}

// TestLockstepRolloutsEquivalence checks each lockstep lane reproduces the
// solo Rollout bit-for-bit, including lanes that finish on different steps.
func TestLockstepRolloutsEquivalence(t *testing.T) {
	const n = 6
	mkEnvs := func() []Env {
		envs := make([]Env, n)
		for k := 0; k < n; k++ {
			envs[k] = &toyEnv{gain: 0.5 + 0.3*float64(k), limit: 10 + 7*k}
		}
		return envs
	}
	mkChoosers := func() []func([]float64) float64 {
		cs := make([]func([]float64) float64, n)
		for k := 0; k < n; k++ {
			p := NewGaussianPolicy(1, -1, 1, int64(1000+k))
			cs[k] = p.Sample
		}
		return cs
	}
	lockstep := LockstepRollouts(mkEnvs(), mkChoosers(), 100)
	solo := make([]Episode, n)
	soloEnvs, soloChoose := mkEnvs(), mkChoosers()
	for k := 0; k < n; k++ {
		solo[k] = Rollout(soloEnvs[k], soloChoose[k], 100)
	}
	lengths := map[int]bool{}
	for k := 0; k < n; k++ {
		if !episodesEqual(lockstep[k], solo[k]) {
			t.Fatalf("lane %d: lockstep episode diverged from solo rollout (steps %d vs %d, return %v vs %v)",
				k, lockstep[k].Steps, solo[k].Steps, lockstep[k].Return, solo[k].Return)
		}
		lengths[lockstep[k].Steps] = true
	}
	if len(lengths) < 2 {
		t.Fatal("all lanes finished on the same step; staggered-completion case not exercised")
	}
}

// TestTrainLockstepEquivalence checks per-agent lockstep training matches
// the scalar Train loop bit-for-bit: same returns trajectory, same learned
// weights.
func TestTrainLockstepEquivalence(t *testing.T) {
	const n = 4
	const episodes, maxSteps = 12, 25
	mkAgents := func() []*Reinforce {
		agents := make([]*Reinforce, n)
		for k := 0; k < n; k++ {
			agents[k] = NewReinforce(1, -1, 1, int64(500+k))
		}
		return agents
	}
	mkEnvs := func() []Env {
		envs := make([]Env, n)
		for k := 0; k < n; k++ {
			envs[k] = &toyEnv{gain: 0.4 + 0.2*float64(k), limit: maxSteps - k}
		}
		return envs
	}

	lockAgents := mkAgents()
	lockRes := TrainLockstep(lockAgents, mkEnvs(), episodes, maxSteps)

	soloAgents := mkAgents()
	soloEnvs := mkEnvs()
	for k := 0; k < n; k++ {
		res := soloAgents[k].Train(soloEnvs[k], episodes, maxSteps)
		if res.BestReturn != lockRes[k].BestReturn || res.BestEpisode != lockRes[k].BestEpisode ||
			res.Episodes != lockRes[k].Episodes {
			t.Fatalf("agent %d: result summary diverged: lockstep %+v vs solo %+v", k, lockRes[k], res)
		}
		for e := range res.Returns {
			if res.Returns[e] != lockRes[k].Returns[e] {
				t.Fatalf("agent %d episode %d: return %v vs solo %v", k, e, lockRes[k].Returns[e], res.Returns[e])
			}
		}
		for i := range soloAgents[k].Policy.W {
			if soloAgents[k].Policy.W[i] != lockAgents[k].Policy.W[i] {
				t.Fatalf("agent %d: learned weight %d diverged: %v vs %v",
					k, i, lockAgents[k].Policy.W[i], soloAgents[k].Policy.W[i])
			}
		}
		if soloAgents[k].Policy.Sigma != lockAgents[k].Policy.Sigma {
			t.Fatalf("agent %d: sigma diverged", k)
		}
	}
}

// TestLockstepRolloutsValidation covers the mismatched-lengths panic.
func TestLockstepRolloutsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched envs/choosers did not panic")
		}
	}()
	LockstepRollouts(make([]Env, 2), make([]func([]float64) float64, 3), 10)
}

// TestTrainLockstepValidation covers the mismatched agents/envs panic.
func TestTrainLockstepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched agents/envs did not panic")
		}
	}()
	TrainLockstep(make([]*Reinforce, 1), make([]Env, 2), 1, 1)
}
