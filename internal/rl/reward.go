package rl

import "math"

// UncontrolledReward implements Equation 4: the agent is rewarded for
// increasing the vehicle's minimum distance d to the mission path, with a
// −∞ terminal penalty when a deployed detector raises an alarm.
//
//	r_t = +Δd  if d_t > d_{t−1} and d_t > ε
//	r_t = −Δd  if d_t < d_{t−1} or  d_t < ε
//	r_t = −∞   if an anomaly is detected
type UncontrolledReward struct {
	// Epsilon is the vehicle radius (the paper uses 0.01).
	Epsilon float64
	prev    float64
	started bool
}

// NewUncontrolledReward returns the Equation 4 reward with ε = 0.01.
func NewUncontrolledReward() *UncontrolledReward {
	return &UncontrolledReward{Epsilon: 0.01}
}

// Reset clears episode state.
func (u *UncontrolledReward) Reset() { u.prev, u.started = 0, false }

// Step scores one observation of the path distance. detected signals a
// defense alarm.
func (u *UncontrolledReward) Step(dist float64, detected bool) (reward float64, done bool) {
	if detected {
		return math.Inf(-1), true
	}
	if !u.started {
		u.prev = dist
		u.started = true
		return 0, false
	}
	delta := math.Abs(dist - u.prev)
	defer func() { u.prev = dist }()
	if dist > u.prev && dist > u.Epsilon {
		return +delta, false
	}
	return -delta, false
}

// ControlledReward implements Equation 5: the agent is rewarded for
// approaching a goal inside a forbidden zone, with a +∞ terminal reward on
// contact and −∞ on detection.
//
//	r_t = +Δd  if d_t < d_{t−1} and d_t > ε
//	r_t = −Δd  if d_t > d_{t−1}
//	r_t = +∞   if d_t ≤ ε (goal reached — e.g. obstacle hit)
//	r_t = −∞   if an anomaly is detected
type ControlledReward struct {
	// Epsilon is the contact distance.
	Epsilon float64
	prev    float64
	started bool
}

// NewControlledReward returns the Equation 5 reward with ε = 0.01.
func NewControlledReward() *ControlledReward {
	return &ControlledReward{Epsilon: 0.01}
}

// Reset clears episode state.
func (c *ControlledReward) Reset() { c.prev, c.started = 0, false }

// Step scores one observation of the distance to the goal.
func (c *ControlledReward) Step(dist float64, detected bool) (reward float64, done bool) {
	if detected {
		return math.Inf(-1), true
	}
	if dist <= c.Epsilon {
		return math.Inf(1), true
	}
	if !c.started {
		c.prev = dist
		c.started = true
		return 0, false
	}
	delta := math.Abs(dist - c.prev)
	defer func() { c.prev = dist }()
	if dist < c.prev {
		return +delta, false
	}
	return -delta, false
}
