package rl

import (
	"math"
	"testing"
)

// driftEnv is a minimal continuous-control task: state x starts at 0, the
// action a ∈ [−1, 1] shifts it by a/10, and the Equation 4 reward pays for
// increasing |x| (distance from the "path" at the origin). The optimal
// policy pushes consistently in one direction.
type driftEnv struct {
	x      float64
	reward *UncontrolledReward
}

func newDriftEnv() *driftEnv { return &driftEnv{reward: NewUncontrolledReward()} }

func (e *driftEnv) Reset() []float64 {
	e.x = 0
	e.reward.Reset()
	e.reward.Step(0, false)
	return []float64{0}
}

func (e *driftEnv) Step(a float64) ([]float64, float64, bool) {
	e.x += a / 10
	r, done := e.reward.Step(math.Abs(e.x), false)
	return []float64{e.x}, r, done
}

func (e *driftEnv) ObservationSize() int             { return 1 }
func (e *driftEnv) ActionBounds() (float64, float64) { return -1, 1 }

// goalEnv rewards approaching a goal at x = 5 (Equation 5) and terminates
// on contact.
type goalEnv struct {
	x      float64
	reward *ControlledReward
}

func newGoalEnv() *goalEnv {
	r := NewControlledReward()
	// Contact radius must exceed the per-step travel (0.1) or the agent
	// could step across the goal without touching it — the same reason
	// the attack environments use the vehicle's physical radius.
	r.Epsilon = 0.15
	return &goalEnv{reward: r}
}

func (e *goalEnv) Reset() []float64 {
	e.x = 0
	e.reward.Reset()
	e.reward.Step(5, false)
	return []float64{0}
}

func (e *goalEnv) Step(a float64) ([]float64, float64, bool) {
	e.x += a / 10
	dist := math.Abs(5 - e.x)
	r, done := e.reward.Step(dist, false)
	return []float64{e.x}, r, done
}

func (e *goalEnv) ObservationSize() int             { return 1 }
func (e *goalEnv) ActionBounds() (float64, float64) { return -1, 1 }

func TestReinforceLearnsDrift(t *testing.T) {
	env := newDriftEnv()
	agent := NewReinforce(env.ObservationSize(), -1, 1, 7)
	res := agent.Train(env, 300, 50)
	if res.Episodes != 300 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	// Learning curve: the last 50 episodes far outperform the first 50.
	early := mean(res.Returns[:50])
	late := res.MeanLastN(50)
	if late <= early {
		t.Errorf("no learning: early %v, late %v", early, late)
	}
	// Near-optimal: max |x| growth is 0.1/step × 50 steps = 5.
	if late < 3 {
		t.Errorf("late mean return = %v, want ≥ 3 (max 5)", late)
	}
}

func TestReinforceLearnsGoal(t *testing.T) {
	env := newGoalEnv()
	agent := NewReinforce(env.ObservationSize(), -1, 1, 8)
	res := agent.Train(env, 400, 100)
	// The trained greedy policy must reach the goal.
	ep := Rollout(env, agent.Policy.Mean, 100)
	last := ep.Transitions[len(ep.Transitions)-1]
	if !math.IsInf(last.Reward, 1) {
		t.Errorf("greedy policy did not reach goal; final x=%v, best return %v",
			env.x, res.BestReturn)
	}
}

func TestQLearnerLearnsDrift(t *testing.T) {
	env := newDriftEnv()
	q := NewQLearner([]float64{-5}, []float64{5}, 5, -1, 1, 9)
	res := q.Train(env, 500, 50)
	late := res.MeanLastN(50)
	if late < 2 {
		t.Errorf("Q-learning late mean return = %v, want ≥ 2", late)
	}
	if q.TableSize() == 0 {
		t.Error("empty Q table after training")
	}
	// A greedy rollout escapes the origin (the task is symmetric, so
	// only the achieved distance matters, not the direction).
	ep := Rollout(env, q.Greedy, 50)
	if ep.Return < 2 {
		t.Errorf("greedy rollout return = %v, want ≥ 2", ep.Return)
	}
}

func TestDiscountedReturns(t *testing.T) {
	ep := Episode{Transitions: []Transition{
		{Reward: 1}, {Reward: 2}, {Reward: 4},
	}}
	g := DiscountedReturns(ep, 0.5, 100)
	want := []float64{1 + 0.5*(2+0.5*4), 2 + 0.5*4, 4}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("G = %v, want %v", g, want)
		}
	}
	// Infinite rewards are saturated.
	epInf := Episode{Transitions: []Transition{
		{Reward: math.Inf(1)}, {Reward: math.Inf(-1)},
	}}
	gInf := DiscountedReturns(epInf, 0.9, 50)
	if gInf[1] != -50 {
		t.Errorf("−∞ surrogate = %v, want -50", gInf[1])
	}
	if gInf[0] != 50+0.9*-50 {
		t.Errorf("+∞ surrogate = %v", gInf[0])
	}
}

func TestGaussianPolicyBoundsAndDeterminism(t *testing.T) {
	p := NewGaussianPolicy(1, -2, 3, 1)
	p.W = []float64{10, 0} // latent mean far beyond the bound
	if got := p.Mean([]float64{0}); got < -2 || got > 3 {
		t.Errorf("mean out of bounds: %v", got)
	}
	if got := p.Mean([]float64{0}); got < 2.99 {
		t.Errorf("saturated mean = %v, want ≈3", got)
	}
	// unsquash inverts squash across the interior of the interval.
	for _, a := range []float64{-1.9, 0, 1.5, 2.9} {
		back := p.squash(p.unsquash(a))
		if math.Abs(back-a) > 1e-9 {
			t.Errorf("squash/unsquash(%v) = %v", a, back)
		}
	}
	for i := 0; i < 1000; i++ {
		a := p.Sample([]float64{0.5})
		if a < -2 || a > 3 {
			t.Fatalf("sample %v out of bounds", a)
		}
	}
	// Same seed, same samples.
	a := NewGaussianPolicy(1, -1, 1, 42)
	b := NewGaussianPolicy(1, -1, 1, 42)
	for i := 0; i < 10; i++ {
		if a.Sample([]float64{0}) != b.Sample([]float64{0}) {
			t.Fatal("same-seed policies diverged")
		}
	}
}

func TestReinforceSigmaDecays(t *testing.T) {
	env := newDriftEnv()
	agent := NewReinforce(1, -1, 1, 10)
	before := agent.Policy.Sigma
	agent.Train(env, 100, 10)
	if agent.Policy.Sigma >= before {
		t.Errorf("sigma did not decay: %v -> %v", before, agent.Policy.Sigma)
	}
	if agent.Policy.Sigma < agent.Policy.SigmaMin {
		t.Errorf("sigma below floor: %v", agent.Policy.Sigma)
	}
}

func TestReinforceEmptyEpisodeNoOp(t *testing.T) {
	agent := NewReinforce(1, -1, 1, 11)
	w := append([]float64{}, agent.Policy.W...)
	agent.Update(Episode{})
	for i := range w {
		if agent.Policy.W[i] != w[i] {
			t.Fatal("empty episode changed weights")
		}
	}
}

func TestUncontrolledRewardShape(t *testing.T) {
	r := NewUncontrolledReward()
	r.Reset()
	if rew, done := r.Step(1.0, false); rew != 0 || done {
		t.Errorf("first step: %v, %v", rew, done)
	}
	// Moving away from the path: positive.
	if rew, _ := r.Step(1.5, false); rew != 0.5 {
		t.Errorf("away reward = %v, want +0.5", rew)
	}
	// Moving back: negative.
	if rew, _ := r.Step(1.2, false); math.Abs(rew-(-0.3)) > 1e-12 {
		t.Errorf("toward reward = %v, want -0.3", rew)
	}
	// Detection: −∞ and done.
	rew, done := r.Step(2, true)
	if !math.IsInf(rew, -1) || !done {
		t.Errorf("detection: %v, %v", rew, done)
	}
	// Inside epsilon: negative even if "increasing".
	r2 := NewUncontrolledReward()
	r2.Reset()
	r2.Step(0.001, false)
	if rew, _ := r2.Step(0.005, false); rew >= 0 {
		t.Errorf("within-epsilon reward = %v, want negative", rew)
	}
}

func TestControlledRewardShape(t *testing.T) {
	c := NewControlledReward()
	c.Reset()
	c.Step(10, false)
	// Approaching: positive.
	if rew, done := c.Step(8, false); rew != 2 || done {
		t.Errorf("approach: %v, %v", rew, done)
	}
	// Retreating: negative.
	if rew, _ := c.Step(9, false); rew != -1 {
		t.Errorf("retreat reward = %v", rew)
	}
	// Contact: +∞ and done.
	rew, done := c.Step(0.005, false)
	if !math.IsInf(rew, 1) || !done {
		t.Errorf("contact: %v, %v", rew, done)
	}
	// Detection dominates.
	c2 := NewControlledReward()
	c2.Reset()
	rew, done = c2.Step(0.001, true)
	if !math.IsInf(rew, -1) || !done {
		t.Errorf("detection: %v, %v", rew, done)
	}
}

func TestRolloutRespectsMaxSteps(t *testing.T) {
	env := newDriftEnv()
	ep := Rollout(env, func([]float64) float64 { return 1 }, 7)
	if ep.Steps != 7 || len(ep.Transitions) != 7 {
		t.Errorf("steps = %d", ep.Steps)
	}
}

func TestTrainResultMeanLastN(t *testing.T) {
	res := &TrainResult{Returns: []float64{1, 2, 3, 4}}
	if got := res.MeanLastN(2); got != 3.5 {
		t.Errorf("MeanLastN(2) = %v", got)
	}
	if got := res.MeanLastN(100); got != 2.5 {
		t.Errorf("MeanLastN(100) = %v", got)
	}
	empty := &TrainResult{}
	if !math.IsNaN(empty.MeanLastN(5)) {
		t.Error("empty MeanLastN not NaN")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
