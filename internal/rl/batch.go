package rl

import (
	"fmt"
	"math"
)

// LockstepRollouts runs one episode on every environment simultaneously:
// all environments reset, then each round every unfinished environment
// takes one step. With environments backed by lanes of one sim.BatchQuad
// (core.BatchEnv), the physics for all rollouts runs through the shared
// structure-of-arrays kernel; environments that finish early simply stop
// being stepped, exactly as Rollout stops on done.
//
// Each environment's episode is bit-identical to Rollout(envs[k],
// choose[k], maxSteps) run alone, because lanes are independent: the
// per-lane sequence of chooser calls and env interactions is unchanged,
// only their interleaving across lanes differs.
func LockstepRollouts(envs []Env, choose []func(obs []float64) float64, maxSteps int) []Episode {
	if len(envs) != len(choose) {
		panic(fmt.Sprintf("rl: %d envs with %d choosers", len(envs), len(choose)))
	}
	n := len(envs)
	eps := make([]Episode, n)
	obs := make([][]float64, n)
	done := make([]bool, n)
	for k, env := range envs {
		obs[k] = env.Reset()
	}
	for step := 0; step < maxSteps; step++ {
		active := false
		for k, env := range envs {
			if done[k] {
				continue
			}
			action := choose[k](obs[k])
			next, reward, d := env.Step(action)
			eps[k].Transitions = append(eps[k].Transitions, Transition{
				Obs:    append([]float64{}, obs[k]...),
				Action: action,
				Reward: reward,
			})
			eps[k].Return += reward
			eps[k].Steps++
			obs[k] = next
			if d {
				done[k] = true
			} else {
				active = true
			}
		}
		if !active {
			break
		}
	}
	return eps
}

// TrainLockstep trains one independent agent per environment, consuming one
// episode from every environment per training round via LockstepRollouts.
// It is the batched form of calling agents[k].Train(envs[k], episodes,
// maxSteps) for every k: each agent's sequence of policy samples, episodes
// and updates is unchanged, so per-agent results are bit-identical to the
// scalar training loop.
func TrainLockstep(agents []*Reinforce, envs []Env, episodes, maxSteps int) []*TrainResult {
	if len(agents) != len(envs) {
		panic(fmt.Sprintf("rl: %d agents with %d envs", len(agents), len(envs)))
	}
	n := len(agents)
	results := make([]*TrainResult, n)
	choose := make([]func(obs []float64) float64, n)
	for k, agent := range agents {
		results[k] = &TrainResult{BestReturn: math.Inf(-1), BestEpisode: -1}
		choose[k] = agent.Policy.Sample
	}
	for e := 0; e < episodes; e++ {
		eps := LockstepRollouts(envs, choose, maxSteps)
		for k, agent := range agents {
			agent.Update(eps[k])
			res := results[k]
			res.Returns = append(res.Returns, eps[k].Return)
			if eps[k].Return > res.BestReturn {
				res.BestReturn = eps[k].Return
				res.BestEpisode = e
			}
			res.Episodes++
		}
	}
	return results
}
