package rl

import (
	"math"
	"math/rand"

	"github.com/ares-cps/ares/internal/mathx"
)

// GaussianPolicy is a squashed linear-Gaussian policy for a continuous
// scalar action: a latent z ~ N(w·φ(s), σ²) with φ(s) = [1, s₁ … s_d] is
// mapped through tanh onto the action bounds. Squashing (rather than
// clamping) keeps the policy gradient unbiased at the boundaries: a
// hard-clamped Gaussian near a bound produces one-sided (a − μ) residuals
// that systematically drag the mean off the optimum.
type GaussianPolicy struct {
	// W holds the latent mean weights (bias first).
	W []float64
	// Sigma is the latent exploration standard deviation.
	Sigma float64
	// SigmaDecay multiplies Sigma after each update (1 = constant).
	SigmaDecay float64
	// SigmaMin floors the exploration noise.
	SigmaMin float64
	// Lo and Hi bound the action.
	Lo, Hi float64

	rng *rand.Rand
}

// NewGaussianPolicy creates a zero-initialized policy for obsSize-dim
// observations with the given action bounds.
func NewGaussianPolicy(obsSize int, lo, hi float64, seed int64) *GaussianPolicy {
	return &GaussianPolicy{
		W:          make([]float64, obsSize+1),
		Sigma:      1,
		SigmaDecay: 0.999,
		SigmaMin:   0.05,
		Lo:         lo,
		Hi:         hi,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// latentMean computes the unsquashed policy mean z(s) = w·φ(s).
func (p *GaussianPolicy) latentMean(obs []float64) float64 {
	m := p.W[0]
	for i, o := range obs {
		m += p.W[i+1] * o
	}
	return m
}

// squash maps a latent value onto the action interval.
func (p *GaussianPolicy) squash(z float64) float64 {
	return p.Lo + (p.Hi-p.Lo)*(math.Tanh(z)+1)/2
}

// unsquash inverts squash; actions at the exact boundary are nudged inward
// so atanh stays finite.
func (p *GaussianPolicy) unsquash(a float64) float64 {
	u := (a-p.Lo)/(p.Hi-p.Lo)*2 - 1
	u = mathx.Clamp(u, -1+1e-9, 1-1e-9)
	return math.Atanh(u)
}

// Mean returns the deterministic (greedy) action for an observation.
func (p *GaussianPolicy) Mean(obs []float64) float64 {
	return p.squash(p.latentMean(obs))
}

// Sample draws an exploratory action.
func (p *GaussianPolicy) Sample(obs []float64) float64 {
	return p.squash(p.latentMean(obs) + p.rng.NormFloat64()*p.Sigma)
}

// Baseline is a linear state-value estimator used to reduce gradient
// variance.
type Baseline struct {
	W []float64
}

// NewBaseline creates a zero value function for obsSize-dim observations.
func NewBaseline(obsSize int) *Baseline {
	return &Baseline{W: make([]float64, obsSize+1)}
}

// Value predicts the return from an observation.
func (b *Baseline) Value(obs []float64) float64 {
	v := b.W[0]
	for i, o := range obs {
		v += b.W[i+1] * o
	}
	return v
}

// update nudges the value estimate toward target.
func (b *Baseline) update(obs []float64, target, lr float64) {
	err := target - b.Value(obs)
	b.W[0] += lr * err
	for i, o := range obs {
		b.W[i+1] += lr * err * o
	}
}

// Reinforce is the REINFORCE policy-gradient learner with baseline.
type Reinforce struct {
	Policy   *GaussianPolicy
	Baseline *Baseline
	// Gamma is the discount factor (0 < γ < 1 per the paper).
	Gamma float64
	// LR is the policy learning rate; BaselineLR the critic's.
	LR         float64
	BaselineLR float64
	// InfSurrogate replaces ±∞ terminal rewards during return
	// computation.
	InfSurrogate float64
	// MaxGradNorm clips per-episode gradient norm (0 disables).
	MaxGradNorm float64
}

// NewReinforce builds a learner with sensible defaults for the attack
// environments.
func NewReinforce(obsSize int, lo, hi float64, seed int64) *Reinforce {
	p := NewGaussianPolicy(obsSize, lo, hi, seed)
	p.SigmaDecay = 0.995
	return &Reinforce{
		Policy:       p,
		Baseline:     NewBaseline(obsSize),
		Gamma:        0.99,
		LR:           0.2,
		BaselineLR:   0.02,
		InfSurrogate: 100,
		MaxGradNorm:  10,
	}
}

// Update performs one REINFORCE update from a completed episode and decays
// the exploration noise.
func (r *Reinforce) Update(ep Episode) {
	if len(ep.Transitions) == 0 {
		return
	}
	// One-step TD advantages: adv_t = r_t + γ·V(s_{t+1}) − V(s_t). TD
	// advantages avoid the Monte-Carlo confound where reward-to-go
	// shrinks with episode progress and late-episode states get
	// systematically negative advantages no matter what the agent did.
	// They are then standardized across the episode so the step size is
	// scale-free.
	adv := make([]float64, len(ep.Transitions))
	for t, tr := range ep.Transitions {
		rew := tr.Reward
		if math.IsInf(rew, 1) {
			rew = r.InfSurrogate
		} else if math.IsInf(rew, -1) {
			rew = -r.InfSurrogate
		}
		target := rew
		if t+1 < len(ep.Transitions) {
			target += r.Gamma * r.Baseline.Value(ep.Transitions[t+1].Obs)
		}
		adv[t] = target - r.Baseline.Value(tr.Obs)
		r.Baseline.update(tr.Obs, target, r.BaselineLR)
	}
	var advMean, advVar float64
	for _, a := range adv {
		advMean += a
	}
	advMean /= float64(len(adv))
	for _, a := range adv {
		d := a - advMean
		advVar += d * d
	}
	advStd := math.Sqrt(advVar/float64(len(adv))) + 1e-8
	grad := make([]float64, len(r.Policy.W))
	sigma2 := r.Policy.Sigma * r.Policy.Sigma
	for t, tr := range ep.Transitions {
		a := (adv[t] - advMean) / advStd
		// ∇w log π = (z − μz)/σ² · φ(s), in the latent (pre-squash) space.
		z := r.Policy.unsquash(tr.Action)
		coeff := (z - r.Policy.latentMean(tr.Obs)) / sigma2 * a
		grad[0] += coeff
		for i, o := range tr.Obs {
			grad[i+1] += coeff * o
		}
	}
	// Normalize by episode length and clip.
	scale := 1 / float64(len(ep.Transitions))
	norm := 0.0
	for i := range grad {
		grad[i] *= scale
		norm += grad[i] * grad[i]
	}
	norm = math.Sqrt(norm)
	if r.MaxGradNorm > 0 && norm > r.MaxGradNorm {
		for i := range grad {
			grad[i] *= r.MaxGradNorm / norm
		}
	}
	for i := range r.Policy.W {
		r.Policy.W[i] += r.LR * grad[i]
	}
	// Decay exploration.
	r.Policy.Sigma = math.Max(r.Policy.SigmaMin, r.Policy.Sigma*r.Policy.SigmaDecay)
}

// TrainResult summarizes a training run.
type TrainResult struct {
	// Returns holds the per-episode returns in order.
	Returns []float64
	// BestReturn and BestEpisode identify the best rollout.
	BestReturn  float64
	BestEpisode int
	// Episodes is the number of episodes actually run.
	Episodes int
}

// MeanLastN averages the last n returns (learning-curve convergence
// metric).
func (t *TrainResult) MeanLastN(n int) float64 {
	if len(t.Returns) == 0 {
		return math.NaN()
	}
	if n > len(t.Returns) {
		n = len(t.Returns)
	}
	s := 0.0
	for _, r := range t.Returns[len(t.Returns)-n:] {
		s += r
	}
	return s / float64(n)
}

// Train runs episodes of REINFORCE against the environment. The paper's
// setup caps training at 5000 episodes of at most 300 steps; callers pass
// smaller budgets for unit tests.
func (r *Reinforce) Train(env Env, episodes, maxSteps int) *TrainResult {
	res := &TrainResult{BestReturn: math.Inf(-1), BestEpisode: -1}
	for e := 0; e < episodes; e++ {
		ep := Rollout(env, r.Policy.Sample, maxSteps)
		r.Update(ep)
		res.Returns = append(res.Returns, ep.Return)
		if ep.Return > res.BestReturn {
			res.BestReturn = ep.Return
			res.BestEpisode = e
		}
		res.Episodes++
	}
	return res
}
