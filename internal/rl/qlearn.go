package rl

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"github.com/ares-cps/ares/internal/mathx"
)

// QLearner is a tabular Q-learning agent over a discretized observation and
// action space. The paper rejects Q-learning for the continuous action
// space of RAV exploits; this implementation exists as the comparison
// baseline for that design-choice ablation.
type QLearner struct {
	// ObsBins discretizes each observation dimension into this many bins.
	ObsBins int
	// ObsLo and ObsHi bound each observation dimension for binning.
	ObsLo, ObsHi []float64
	// Actions holds the discrete action levels.
	Actions []float64
	// Alpha is the learning rate, Gamma the discount, Epsilon the
	// exploration rate (decayed per episode).
	Alpha, Gamma  float64
	Epsilon       float64
	EpsilonDecay  float64
	EpsilonMin    float64
	InfSurrogate  float64
	table         map[uint64][]float64
	rng           *rand.Rand
	episodesSoFar int
}

// NewQLearner builds a Q-learning agent with nActions evenly spaced action
// levels over [lo, hi].
func NewQLearner(obsLo, obsHi []float64, nActions int, lo, hi float64, seed int64) *QLearner {
	if nActions < 2 {
		nActions = 2
	}
	actions := make([]float64, nActions)
	for i := range actions {
		actions[i] = lo + (hi-lo)*float64(i)/float64(nActions-1)
	}
	return &QLearner{
		ObsBins:      8,
		ObsLo:        append([]float64{}, obsLo...),
		ObsHi:        append([]float64{}, obsHi...),
		Actions:      actions,
		Alpha:        0.2,
		Gamma:        0.99,
		Epsilon:      0.5,
		EpsilonDecay: 0.995,
		EpsilonMin:   0.02,
		InfSurrogate: 100,
		table:        make(map[uint64][]float64),
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// key discretizes an observation into a packed table key: each dimension's
// bin occupies its own bit field of ceil(log2(ObsBins)) bits, so distinct
// bin vectors always map to distinct keys for any ObsBins — the earlier
// one-byte-per-dimension string key silently wrapped once 'a'+bin
// overflowed a byte — and the key is a plain integer, so the hot training
// loop allocates nothing per step. Panics when the observation cannot fit
// in 64 bits (dimensions × bits-per-bin > 64): a silently colliding table
// would corrupt learning, which is strictly worse than failing loudly.
func (q *QLearner) key(obs []float64) uint64 {
	nb := q.ObsBins
	if nb < 1 {
		nb = 1
	}
	width := uint(bits.Len(uint(nb - 1)))
	if uint(len(obs))*width > 64 {
		panic(fmt.Sprintf("rl: observation space too large to pack: %d dims × %d bins needs %d bits",
			len(obs), nb, uint(len(obs))*width))
	}
	var k uint64
	for i, o := range obs {
		lo, hi := -1.0, 1.0
		if i < len(q.ObsLo) {
			lo = q.ObsLo[i]
		}
		if i < len(q.ObsHi) {
			hi = q.ObsHi[i]
		}
		frac := 0.0
		if hi > lo {
			frac = (mathx.Clamp(o, lo, hi) - lo) / (hi - lo)
		}
		bin := int(frac * float64(nb))
		if bin >= nb {
			bin = nb - 1
		}
		k = k<<width | uint64(bin)
	}
	return k
}

func (q *QLearner) values(key uint64) []float64 {
	v, ok := q.table[key]
	if !ok {
		v = make([]float64, len(q.Actions))
		q.table[key] = v
	}
	return v
}

// Greedy returns the current best action for an observation.
func (q *QLearner) Greedy(obs []float64) float64 {
	vals := q.values(q.key(obs))
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return q.Actions[best]
}

func (q *QLearner) sampleIndex(obs []float64) int {
	if q.rng.Float64() < q.Epsilon {
		return q.rng.Intn(len(q.Actions))
	}
	vals := q.values(q.key(obs))
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return best
}

// Train runs episodes of ε-greedy Q-learning against the environment.
// The per-step path (key packing, table lookup, value update) allocates
// nothing once a state's action-value row exists; an allocation-regression
// test pins that contract.
func (q *QLearner) Train(env Env, episodes, maxSteps int) *TrainResult {
	res := &TrainResult{BestReturn: math.Inf(-1), BestEpisode: -1}
	if episodes > 0 {
		res.Returns = make([]float64, 0, episodes)
	}
	for e := 0; e < episodes; e++ {
		obs := env.Reset()
		ret := 0.0
		for step := 0; step < maxSteps; step++ {
			ai := q.sampleIndex(obs)
			next, reward, done := env.Step(q.Actions[ai])
			ret += reward
			r := reward
			if math.IsInf(r, 1) {
				r = q.InfSurrogate
			} else if math.IsInf(r, -1) {
				r = -q.InfSurrogate
			}
			cur := q.values(q.key(obs))
			target := r
			if !done {
				nv := q.values(q.key(next))
				best := nv[0]
				for _, v := range nv {
					if v > best {
						best = v
					}
				}
				target += q.Gamma * best
			}
			cur[ai] += q.Alpha * (target - cur[ai])
			obs = next
			if done {
				break
			}
		}
		q.Epsilon = math.Max(q.EpsilonMin, q.Epsilon*q.EpsilonDecay)
		res.Returns = append(res.Returns, ret)
		if ret > res.BestReturn {
			res.BestReturn = ret
			res.BestEpisode = e
		}
		res.Episodes++
		q.episodesSoFar++
	}
	return res
}

// TableSize returns the number of discretized states visited so far.
func (q *QLearner) TableSize() int { return len(q.table) }
