// Package rl implements the reinforcement-learning machinery ARES uses to
// generate adversarial state-variable values: a Gym-style environment
// interface, a REINFORCE policy-gradient learner with a Gaussian policy
// over the continuous manipulation amount (the paper opts for "a policy
// gradient method over the conventional Q-learning algorithm ... to handle
// the continuous action space"), a tabular Q-learning comparator for the
// ablation bench, and the Equation 4/5 reward functions.
package rl

import "math"

// Env is the episodic environment interface (modeled on OpenAI Gym). The
// ARES attack environments wrap the simulated firmware: Reset lands,
// disarms and re-arms the vehicle; Step injects one state-variable
// manipulation and advances the simulation by the action interval (0.3 s in
// the paper's setup).
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	Reset() []float64
	// Step applies an action and returns the next observation, the
	// reward, and whether the episode has terminated.
	Step(action float64) (obs []float64, reward float64, done bool)
	// ObservationSize returns the dimension of observations.
	ObservationSize() int
	// ActionBounds returns the valid action interval [lo, hi].
	ActionBounds() (lo, hi float64)
}

// Transition is one (s, a, r) step of an episode.
type Transition struct {
	Obs    []float64
	Action float64
	Reward float64
}

// Episode is one rollout.
type Episode struct {
	Transitions []Transition
	// Return is the undiscounted reward sum.
	Return float64
	// Steps is the episode length.
	Steps int
}

// Rollout runs a single episode of at most maxSteps using the given action
// chooser.
func Rollout(env Env, choose func(obs []float64) float64, maxSteps int) Episode {
	var ep Episode
	obs := env.Reset()
	for step := 0; step < maxSteps; step++ {
		action := choose(obs)
		next, reward, done := env.Step(action)
		ep.Transitions = append(ep.Transitions, Transition{
			Obs:    append([]float64{}, obs...),
			Action: action,
			Reward: reward,
		})
		ep.Return += reward
		ep.Steps++
		obs = next
		if done {
			break
		}
	}
	return ep
}

// DiscountedReturns computes G_t = Σ_k γ^k r_{t+k} for every step. Infinite
// rewards (the paper's ±∞ terminal rewards) saturate rather than poison the
// sum: they are replaced by ±infSurrogate before discounting.
func DiscountedReturns(ep Episode, gamma, infSurrogate float64) []float64 {
	g := make([]float64, len(ep.Transitions))
	acc := 0.0
	for t := len(ep.Transitions) - 1; t >= 0; t-- {
		r := ep.Transitions[t].Reward
		if math.IsInf(r, 1) {
			r = infSurrogate
		} else if math.IsInf(r, -1) {
			r = -infSurrogate
		}
		acc = r + gamma*acc
		g[t] = acc
	}
	return g
}
