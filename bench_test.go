// Benchmarks regenerating every table and figure of the paper's evaluation
// (Tables I–II, Figures 3 and 5–11) plus the design-choice ablations, one
// benchmark per artifact, and micro-benchmarks for the hot substrates.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Record a repo-wide baseline (see README "Performance"):
//
//	go test -run=^$ -bench=. -benchtime=1x ./... | go run ./cmd/benchrec > BENCH_$(date +%F).json
//
// Each experiment benchmark executes the full experiment per iteration (in
// quick mode, so the suite stays laptop-sized) and reports headline shape
// metrics via b.ReportMetric; the text tables themselves come from
// cmd/experiments.
package ares

import (
	"math/rand"
	"testing"

	"github.com/ares-cps/ares/internal/attack"
	"github.com/ares-cps/ares/internal/control"
	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/ekf"
	"github.com/ares-cps/ares/internal/experiments"
	"github.com/ares-cps/ares/internal/mathx"
	"github.com/ares-cps/ares/internal/mavlink"
	"github.com/ares-cps/ares/internal/stats"
	"io"
)

// benchSuite shares profile/monitor setup across benchmark iterations so the
// per-iteration cost is the experiment itself.
var benchSuite = experiments.NewSuite(42, true)

func BenchmarkTableI_KSVLInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.TotalALVs), "ALVs")
			b.ReportMetric(float64(res.LiveMessages), "live-msg-types")
		}
	}
}

func BenchmarkTableII_TSVLPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, row := range res.Rows {
				total += row.TSVLCount
			}
			b.ReportMetric(float64(total), "TSVL-vars")
		}
	}
}

func BenchmarkFig3_RollESVLGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Edges)), "edges")
		}
	}
}

func BenchmarkFig5_CorrHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Roll.Names)), "variables")
			b.ReportMetric(float64(len(res.Clusters)), "clusters")
		}
	}
}

func BenchmarkFig6_ControlInvariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ARES.MaxCI, "ares-max-err")
			b.ReportMetric(res.Naive.MaxCI, "naive-max-err")
			b.ReportMetric(res.ARES.MaxPathDev, "ares-dev-m")
		}
	}
}

func BenchmarkFig7_MLMonitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ARES.MaxML, "ares-max-dist")
			b.ReportMetric(res.Naive.MaxML, "naive-max-dist")
		}
	}
}

func BenchmarkFig8_EKFEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MaxIOutput, "max-I-output")
			b.ReportMetric(res.MaxResidualDeg, "max-residual-deg")
		}
	}
}

func BenchmarkFig9_ThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Sweep1[len(res.Sweep1)-1]
			b.ReportMetric(last.TPRate*100, "tp-at-min-threshold-%")
			b.ReportMetric(last.FPRate*100, "fp-at-min-threshold-%")
		}
	}
}

func BenchmarkFig10_UncontrolledFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, sc := range res.Scenarios {
				if sc.Name == "RL-trained" {
					b.ReportMetric(sc.MaxDev, "trained-dev-m")
				}
			}
		}
	}
}

func BenchmarkFig11_ControlledFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, sc := range res.Scenarios {
				if sc.Name == "RL-trained" {
					b.ReportMetric(sc.MinDist, "trained-min-dist-m")
				}
			}
		}
	}
}

func BenchmarkAblation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblation(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.ClusteredModels), "clustered-models")
			b.ReportMetric(float64(res.FlatModels), "flat-models")
		}
	}
}

func BenchmarkCountermeasure_VariableMonitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCountermeasure(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			caught := 0.0
			if res.Ramp.DetectedVar {
				caught = 1
			}
			b.ReportMetric(caught, "ramp-caught")
		}
	}
}

func BenchmarkFuzzBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFuzzBaseline(benchSuite)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.FuzzBoth), "fuzz-both")
			b.ReportMetric(float64(res.Trials), "fuzz-trials")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkFirmwareTick measures one 400 Hz main-loop iteration of the full
// flight stack (sensors, EKF, SINS, cascade, mixer, physics).
func BenchmarkFirmwareTick(b *testing.B) {
	fw, err := attack.NewFirmware(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := fw.Takeoff(10); err != nil {
		b.Fatal(err)
	}
	fw.RunFor(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step()
	}
}

func BenchmarkEKFPredict(b *testing.B) {
	e := ekf.New(ekf.DefaultConfig())
	gyro := mathx.V3(0.1, -0.05, 0.02)
	accel := mathx.V3(0.2, 0.1, -9.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Predict(gyro, accel, 1.0/400)
	}
}

func BenchmarkPIDUpdate(b *testing.B) {
	p := control.NewPID(control.PIDConfig{
		KP: 0.135, KI: 0.09, KD: 0.0036, IMax: 0.25, FilterHz: 20, DT: 1.0 / 400,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(0.5, 0.45)
	}
}

func BenchmarkCorrelationMatrix24x3000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	series := make([][]float64, 24)
	for i := range series {
		series[i] = make([]float64, 3000)
		for j := range series[i] {
			series[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.CorrelationMatrix(series)
	}
}

// BenchmarkPipelineAnalyze measures the public-facade Analyze stage (the
// per-run Algorithm 1 cost a campaign pays for every job) over a shared
// profile, at one-worker and default parallelism.
func BenchmarkPipelineAnalyze(b *testing.B) {
	runAt := func(b *testing.B, parallelism int) {
		p := NewPipeline(Config{
			Seed:     1,
			Missions: 2,
			Analysis: AnalysisOptions{Parallelism: parallelism},
		})
		if err := p.Profile(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Analyze(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(p.TSVL())), "TSVL-vars")
			}
		}
	}
	b.Run("w1", func(b *testing.B) { runAt(b, 1) })
	b.Run("default", func(b *testing.B) { runAt(b, 0) })
}

func BenchmarkStepwiseAIC(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	preds := make(map[string][]float64, 8)
	y := make([]float64, n)
	for k := 0; k < 8; k++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		preds[string(rune('a'+k))] = xs
	}
	for i := range y {
		y[i] = 2*preds["a"][i] - preds["b"][i] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.StepwiseAIC(y, preds)
	}
}

func BenchmarkMAVLinkRoundTrip(b *testing.B) {
	msg := &mavlink.ParamSet{Name: "ATC_RAT_RLL_P", Value: 0.135}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := msg.Marshal()
		if _, err := mavlink.Decode(mavlink.Frame{
			MsgID: msg.ID(), Payload: payload,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataflashWrite(b *testing.B) {
	w := dataflash.NewWriter(io.Discard)
	vals := make([]float64, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Log("ATT", float64(i)/400, vals...); err != nil {
			b.Fatal(err)
		}
	}
}
