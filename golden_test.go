package ares

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestReportGolden pins the full rendered report at a fixed seed. The whole
// stack is deterministic — simulation, profiling, Algorithm 1 and the text
// renderer — so any byte of drift means an unintended behaviour change
// somewhere in the pipeline. Regenerate deliberately with:
//
//	go test -run TestReportGolden -update .
func TestReportGolden(t *testing.T) {
	p := NewPipeline(Config{Seed: 1, Missions: 2})
	if err := p.Profile(); err != nil {
		t.Fatal(err)
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Report().WriteText(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_seed1.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestReportGolden -update .` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report text drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), want)
	}
}
