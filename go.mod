module github.com/ares-cps/ares

go 1.22
