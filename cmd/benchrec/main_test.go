package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/ares-cps/ares/internal/stats
cpu: Some CPU @ 2.0GHz
BenchmarkCorrelationMatrix/V=128/w1-8         	      10	 5000000 ns/op
BenchmarkCorrelationMatrixNaive/V=128-8       	       2	25000000 ns/op
BenchmarkGenerateTSVL/V=32/w1-8               	       5	 3000000 ns/op	    41.0 models-fitted
PASS
ok  	github.com/ares-cps/ares/internal/stats	2.1s
pkg: github.com/ares-cps/ares
BenchmarkPipelineAnalyze/w1 	       1	 90000000 ns/op	 12.0 TSVL-vars
garbage line that is not a benchmark
BenchmarkBroken	notanumber	1 ns/op
`

func TestParse(t *testing.T) {
	base, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(base.Results), base.Results)
	}

	first := base.Results[0]
	if first.Pkg != "github.com/ares-cps/ares/internal/stats" {
		t.Errorf("pkg = %q", first.Pkg)
	}
	if first.Name != "BenchmarkCorrelationMatrix/V=128/w1" || first.Procs != 8 {
		t.Errorf("name/procs = %q/%d", first.Name, first.Procs)
	}
	if first.Iterations != 10 || first.Metrics["ns/op"] != 5e6 {
		t.Errorf("iters/ns = %d/%v", first.Iterations, first.Metrics["ns/op"])
	}

	tsvl := base.Results[2]
	if tsvl.Metrics["models-fitted"] != 41 {
		t.Errorf("extra metric lost: %+v", tsvl.Metrics)
	}

	last := base.Results[3]
	if last.Pkg != "github.com/ares-cps/ares" || last.Name != "BenchmarkPipelineAnalyze/w1" {
		t.Errorf("last = %+v", last)
	}
	// A bare name with no -P suffix keeps procs = 1.
	if last.Procs != 1 {
		t.Errorf("procs = %d, want 1", last.Procs)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("empty bench output accepted")
	}
}
