// Command benchrec converts `go test -bench` output on stdin into the
// repository's BENCH_*.json baseline format, so benchmark trajectories can
// be committed and diffed across PRs:
//
//	go test -run=^$ -bench=. -benchtime=1x ./... | go run ./cmd/benchrec > BENCH_$(date +%F).json
//
// Compare two baselines with any JSON diff; the per-benchmark key is
// pkg + name, and every metric go test reported (ns/op plus b.ReportMetric
// extras) is preserved.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one recorded benchmark.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the BENCH_*.json document.
type Baseline struct {
	RecordedAt string   `json:"recorded_at"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

func main() {
	base, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
	base.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output and collects every benchmark
// line, tracking the current package from the interleaved "pkg:" headers.
func parse(r io.Reader) (*Baseline, error) {
	base := &Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		//areslint:ignore parbudget recording environment metadata, not sizing a pool
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    []Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		res.Pkg = pkg
		base.Results = append(base.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return base, nil
}

// parseBenchLine parses one "BenchmarkName-P  iters  v1 unit1  v2 unit2 …"
// line. Malformed lines are skipped rather than fatal, so partial bench
// output still records.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Result{}, false
	}
	return Result{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}
