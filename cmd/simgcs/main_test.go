package main

import (
	"net"
	"testing"
	"time"
)

// TestServeAndConnect runs a vehicle server and a GCS client end to end over
// a real TCP connection: takeoff, parameter write, parameter read-back and
// telemetry watch.
func TestServeAndConnect(t *testing.T) {
	// Pick a free port first so the client knows where to go.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	serverDone := make(chan error, 1)
	go func() {
		serverDone <- run([]string{"-serve", addr, "-seconds", "60"})
	}()
	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The probe connection above was consumed by the single-connection
	// server; restart it for the real client.
	<-serverDone
	go func() {
		serverDone <- run([]string{"-serve", addr, "-seconds", "60"})
	}()
	time.Sleep(300 * time.Millisecond)

	if err := run([]string{
		"-connect", addr,
		"-takeoff", "8",
		"-param", "ATC_RAT_RLL_P", "-value", "0.2", "-set",
		"-watch", "2",
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serverDone:
		// EOF after the client hangs up is a clean outcome.
		if err != nil {
			t.Logf("server exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after client disconnect")
	}
}

func TestNoActionErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no action accepted")
	}
}
