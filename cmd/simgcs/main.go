// Command simgcs is the MAVProxy stand-in: it can serve a simulated vehicle
// over TCP (-serve) and act as a ground control station client against it
// (-connect), exercising the full GCS protocol path the attacker abuses.
//
// Usage:
//
//	simgcs -serve :5760 [-rate 400] [-seconds 120]
//	simgcs -connect localhost:5760 -takeoff 10
//	simgcs -connect localhost:5760 -param ATC_RAT_RLL_P -value 0.2
//	simgcs -connect localhost:5760 -mission 60 -watch 30
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/mavlink"
	"github.com/ares-cps/ares/internal/sensors"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simgcs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simgcs", flag.ContinueOnError)
	serve := fs.String("serve", "", "serve a simulated vehicle on this TCP address")
	seconds := fs.Float64("seconds", 300, "simulated flight budget for -serve")
	connect := fs.String("connect", "", "connect to a vehicle as a GCS")
	takeoff := fs.Float64("takeoff", 0, "command a takeoff to this altitude")
	param := fs.String("param", "", "parameter to set (with -value) or read")
	value := fs.Float64("value", 0, "value for -param")
	setValue := fs.Bool("set", false, "set -param to -value instead of reading")
	mission := fs.Float64("mission", 0, "upload and start a line mission of this length")
	watch := fs.Float64("watch", 0, "print telemetry for this many seconds")
	seed := fs.Int64("seed", 1, "sensor seed for -serve")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *serve != "":
		return serveVehicle(*serve, *seconds, *seed)
	case *connect != "":
		return runGCS(*connect, gcsActions{
			takeoff:  *takeoff,
			param:    *param,
			value:    *value,
			setParam: *setValue,
			mission:  *mission,
			watch:    *watch,
		})
	default:
		fs.Usage()
		return fmt.Errorf("need -serve or -connect")
	}
}

// serveVehicle runs one firmware instance and bridges one TCP client to its
// GCS inbox/outbox. The simulation advances in real time (400 ticks per
// wall-clock second) so an interactive GCS session behaves like a live link.
func serveVehicle(addr string, seconds float64, seed int64) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("vehicle listening on %s\n", ln.Addr())

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("GCS connected from %s\n", conn.RemoteAddr())

	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	fw, err := firmware.New(firmware.Config{Sensors: sensorCfg})
	if err != nil {
		return err
	}
	ep := mavlink.NewEndpoint(conn, 1)

	// Reader goroutine: GCS messages → firmware inbox.
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for {
			m, err := ep.Recv()
			if err != nil {
				readerDone <- err
				return
			}
			fw.Enqueue(m)
		}
	}()

	// The session loop is paced by the wall clock on purpose — this is an
	// interactive link emulator, not a reproducible experiment; the seed
	// above only shapes the sensor noise.
	//areslint:ignore dettaint interactive session paced by wall clock; seed only shapes sensor noise
	return runSession(ep, fw, seconds, readerDone)
}

// runSession drives the firmware at a live-link cadence until the
// deadline passes, the GCS disconnects, or the vehicle crashes.
func runSession(ep *mavlink.Endpoint, fw *firmware.Firmware, seconds float64, readerDone chan error) error {
	ticker := time.NewTicker(100 * time.Millisecond) // 40 ticks per wake-up
	defer ticker.Stop()
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	lastTelemetry := time.Now()
	for time.Now().Before(deadline) {
		select {
		case err := <-readerDone:
			if err != nil && !errors.Is(err, io.EOF) {
				return fmt.Errorf("link: %w", err)
			}
			return nil
		case <-ticker.C:
			fw.StepN(40)
			for _, reply := range fw.DrainOutbox() {
				if err := ep.Send(reply); err != nil {
					return err
				}
			}
			if time.Since(lastTelemetry) >= time.Second {
				lastTelemetry = time.Now()
				for _, m := range fw.TelemetrySnapshot() {
					if err := ep.Send(m); err != nil {
						return err
					}
				}
			}
			if crashed, reason := fw.Quad().Crashed(); crashed {
				_ = ep.Send(&mavlink.StatusText{Severity: 2, Text: "CRASH: " + reason})
				return fmt.Errorf("vehicle crashed: %s", reason)
			}
		}
	}
	return nil
}

type gcsActions struct {
	takeoff  float64
	param    string
	value    float64
	setParam bool
	mission  float64
	watch    float64
}

func runGCS(addr string, a gcsActions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	ep := mavlink.NewEndpoint(conn, 255)

	expect := func(want uint8) (mavlink.Message, error) {
		for {
			m, err := ep.Recv()
			if err != nil {
				return nil, err
			}
			if m.ID() == want {
				return m, nil
			}
		}
	}

	if a.takeoff > 0 {
		if err := ep.Send(&mavlink.CommandLong{
			Command: mavlink.CmdTakeoff,
			Params:  [7]float64{6: a.takeoff},
		}); err != nil {
			return err
		}
		m, err := expect(mavlink.MsgIDCommandAck)
		if err != nil {
			return err
		}
		fmt.Printf("takeoff ack: %+v\n", m)
	}
	if a.param != "" {
		if a.setParam {
			if err := ep.Send(&mavlink.ParamSet{Name: a.param, Value: a.value}); err != nil {
				return err
			}
		} else {
			if err := ep.Send(&mavlink.ParamRequestRead{Name: a.param}); err != nil {
				return err
			}
		}
		m, err := expect(mavlink.MsgIDParamValue)
		if err != nil {
			return err
		}
		pv := m.(*mavlink.ParamValue)
		fmt.Printf("param %s = %g (ok=%v)\n", pv.Name, pv.Value, pv.OK)
	}
	if a.mission > 0 {
		items := []*mavlink.MissionItem{
			{Seq: 0, X: 0, Y: 0, Z: -10},
			{Seq: 1, X: a.mission, Y: 0, Z: -10},
		}
		for _, it := range items {
			if err := ep.Send(it); err != nil {
				return err
			}
		}
		if _, err := expect(mavlink.MsgIDMissionAck); err != nil {
			return err
		}
		if err := ep.Send(&mavlink.CommandLong{Command: mavlink.CmdMissionGo}); err != nil {
			return err
		}
		if _, err := expect(mavlink.MsgIDCommandAck); err != nil {
			return err
		}
		fmt.Printf("mission of %.0f m started\n", a.mission)
	}
	if a.watch > 0 {
		deadline := time.Now().Add(time.Duration(a.watch * float64(time.Second)))
		for time.Now().Before(deadline) {
			m, err := ep.Recv()
			if err != nil {
				return err
			}
			switch t := m.(type) {
			case *mavlink.Attitude:
				fmt.Printf("t=%7.1f roll=%6.2f pitch=%6.2f yaw=%6.2f\n",
					t.TimeS, t.Roll, t.Pitch, t.Yaw)
			case *mavlink.GlobalPosition:
				fmt.Printf("t=%7.1f pos=(%.1f, %.1f, %.1f)\n", t.TimeS, t.X, t.Y, t.Z)
			case *mavlink.StatusText:
				fmt.Printf("status[%d]: %s\n", t.Severity, t.Text)
			}
		}
	}
	return nil
}
