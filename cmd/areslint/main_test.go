package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// runCLI invokes run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFixturesExitNonZero(t *testing.T) {
	for _, dir := range []string{
		"internal/lint/testdata/src/ctxflow",
		"internal/lint/testdata/src/detrand/...",
		"internal/lint/testdata/src/dettaint/...",
		"internal/lint/testdata/src/errclose",
		"internal/lint/testdata/src/fpreassoc/...",
		"internal/lint/testdata/src/goleak",
		"internal/lint/testdata/src/metricname",
		"internal/lint/testdata/src/parbudget",
		"internal/lint/testdata/src/seedarith",
		"internal/lint/testdata/src/wirestrict",
	} {
		t.Run(dir, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, dir)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr missing summary line: %q", stderr)
			}
		})
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "internal/mathx")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run must print nothing, got %q", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "internal/lint/testdata/src/parbudget")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 || diags[0].Check != "parbudget" || diags[0].Line == 0 {
		t.Fatalf("unexpected JSON findings: %+v", diags)
	}
}

func TestChecksSubset(t *testing.T) {
	// The detrand fixture trips only detrand; running just seedarith
	// over it must come back clean.
	code, stdout, stderr := runCLI(t, "-checks", "seedarith", "internal/lint/testdata/src/detrand/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-checks", "nosuch", "internal/mathx")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr = %q, want unknown-check error", stderr)
	}
}

func TestNoPatternsExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-sarif", "internal/lint/testdata/src/parbudget")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("stdout is not SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d; want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Results) == 0 || log.Runs[0].Results[0].RuleID != "parbudget" {
		t.Fatalf("unexpected SARIF results: %+v", log.Runs[0].Results)
	}
}

func TestMutuallyExclusiveFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-json", "-sarif", "internal/mathx"},
		{"-fix", "-diff", "internal/mathx"},
	} {
		if code, _, stderr := runCLI(t, args...); code != 2 {
			t.Errorf("%v: exit = %d, want 2 (stderr %q)", args, code, stderr)
		}
	}
}

func TestCacheWarmRunIdentical(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "lint.cache")
	target := "internal/lint/testdata/src/seedarith"

	codeCold, outCold, errCold := runCLI(t, "-cache", cachePath, target)
	if codeCold != 1 {
		t.Fatalf("cold exit = %d, want 1\nstderr:\n%s", codeCold, errCold)
	}
	if !strings.Contains(errCold, "miss(es)") {
		t.Errorf("cold stderr missing cache stats: %q", errCold)
	}

	codeWarm, outWarm, errWarm := runCLI(t, "-cache", cachePath, target)
	if codeWarm != 1 {
		t.Fatalf("warm exit = %d, want 1\nstderr:\n%s", codeWarm, errWarm)
	}
	if outWarm != outCold {
		t.Errorf("warm report differs from cold:\ncold:\n%s\nwarm:\n%s", outCold, outWarm)
	}
	if !strings.Contains(errWarm, "0 miss(es)") {
		t.Errorf("warm stderr should report zero misses: %q", errWarm)
	}
}

func TestDiffPreviewsWithoutWriting(t *testing.T) {
	fixture := "internal/lint/testdata/src/seedarith"
	abs := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "seedarith")
	before := readTree(t, abs)

	code, stdout, stderr := runCLI(t, "-diff", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "mathx.DeriveSeed") {
		t.Errorf("diff output missing the seedarith rewrite:\n%s", stdout)
	}
	if !strings.Contains(stderr, "previewed") {
		t.Errorf("stderr missing preview summary: %q", stderr)
	}
	if after := readTree(t, abs); !reflect.DeepEqual(before, after) {
		t.Error("-diff modified fixture sources on disk")
	}
}

// readTree snapshots every file under dir for a before/after comparison.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	tree := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tree[path] = string(data)
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return tree
}

func TestListChecks(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"ctxflow", "detrand", "dettaint", "errclose", "fpreassoc",
		"goleak", "metricname", "parbudget", "seedarith", "wirestrict",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}
