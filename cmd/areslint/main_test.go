package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// runCLI invokes run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestFixturesExitNonZero(t *testing.T) {
	for _, dir := range []string{
		"internal/lint/testdata/src/ctxflow",
		"internal/lint/testdata/src/detrand/...",
		"internal/lint/testdata/src/errclose",
		"internal/lint/testdata/src/metricname",
		"internal/lint/testdata/src/parbudget",
		"internal/lint/testdata/src/seedarith",
	} {
		t.Run(dir, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, dir)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
			}
			if !strings.Contains(stderr, "finding(s)") {
				t.Errorf("stderr missing summary line: %q", stderr)
			}
		})
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, "internal/mathx")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run must print nothing, got %q", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "internal/lint/testdata/src/parbudget")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		Check   string `json:"check"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 || diags[0].Check != "parbudget" || diags[0].Line == 0 {
		t.Fatalf("unexpected JSON findings: %+v", diags)
	}
}

func TestChecksSubset(t *testing.T) {
	// The detrand fixture trips only detrand; running just seedarith
	// over it must come back clean.
	code, stdout, stderr := runCLI(t, "-checks", "seedarith", "internal/lint/testdata/src/detrand/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-checks", "nosuch", "internal/mathx")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr = %q, want unknown-check error", stderr)
	}
}

func TestNoPatternsExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestListChecks(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxflow", "detrand", "errclose", "metricname", "parbudget", "seedarith"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}
