// Command areslint runs the repository's project-specific static
// analyzers (internal/lint) over the given packages and exits non-zero
// when any invariant is violated:
//
//	go run ./cmd/areslint ./...
//	go run ./cmd/areslint -json ./internal/stats ./internal/core
//	go run ./cmd/areslint -checks detrand,seedarith ./...
//	go run ./cmd/areslint -cache .lintcache ./...
//	go run ./cmd/areslint -diff ./...            # preview suggested fixes
//	go run ./cmd/areslint -fix ./...             # apply suggested fixes
//	go run ./cmd/areslint -sarif ./... > lint.sarif
//
// Patterns are directories relative to the module root (or absolute);
// `dir/...` walks a subtree, skipping testdata and vendor. Suppress a
// finding in place with `//areslint:ignore <check> <reason>` on the
// offending line or the line above.
//
// -cache memoizes per-package results keyed by source hash, check
// config and dependency fact signatures; the report is byte-identical
// to an uncached run. -fix applies every non-conflicting suggested fix
// atomically (overlapping fixes are skipped and reported); -diff
// previews the same edits as a unified diff without writing. Exit
// status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/ares-cps/ares/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("areslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 (code-scanning upload format)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	workers := fs.Int("workers", 0, "packages analyzed concurrently (0 = process budget)")
	cachePath := fs.String("cache", "", "path to the incremental lint cache (empty = no cache)")
	fix := fs.Bool("fix", false, "apply suggested fixes (atomically, skipping conflicts)")
	diff := fs.Bool("diff", false, "print suggested fixes as a unified diff instead of findings")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: areslint [-json|-sarif] [-checks c1,c2] [-cache FILE] [-fix|-diff] [-list] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "areslint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *fix && *diff {
		fmt.Fprintln(stderr, "areslint: -fix and -diff are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *checks != "" {
		var bad string
		analyzers, bad = lint.ByName(strings.Split(*checks, ","))
		if bad != "" {
			fmt.Fprintf(stderr, "areslint: unknown check %q (see -list)\n", bad)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}

	var diags []lint.Diagnostic
	var npkgs int
	if *cachePath != "" {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		cache := lint.OpenCache(*cachePath, strings.Join(names, ","))
		var stats lint.CacheStats
		diags, stats, err = lint.RunCached(root, patterns, analyzers, *workers, cache)
		if err != nil {
			fmt.Fprintln(stderr, "areslint:", err)
			return 2
		}
		if err := cache.Save(); err != nil {
			fmt.Fprintln(stderr, "areslint: saving cache:", err)
			return 2
		}
		npkgs = stats.Hits + stats.Misses
		fmt.Fprintf(stderr, "areslint: cache: %d hit(s), %d miss(es)\n", stats.Hits, stats.Misses)
	} else {
		loader, err := lint.NewLoader(root)
		if err != nil {
			fmt.Fprintln(stderr, "areslint:", err)
			return 2
		}
		pkgs, err := loader.Load(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "areslint:", err)
			return 2
		}
		diags = lint.Run(pkgs, analyzers, *workers)
		npkgs = len(pkgs)
	}

	if *fix || *diff {
		return runFixes(diags, root, *fix, stdout, stderr)
	}

	switch {
	case *jsonOut:
		err = lint.WriteJSON(stdout, diags)
	case *sarifOut:
		err = lint.WriteSARIF(stdout, diags, analyzers)
	default:
		err = lint.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "areslint: %d finding(s) in %d package(s)\n", len(diags), npkgs)
		return 1
	}
	return 0
}

// runFixes plans the report's suggested fixes against the on-disk
// sources, then either applies them atomically (-fix) or prints the
// unified diff (-diff).
func runFixes(diags []lint.Diagnostic, root string, apply bool, stdout, stderr io.Writer) int {
	src := make(map[string][]byte)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			if _, ok := src[e.File]; ok {
				continue
			}
			path := e.File
			if !filepath.IsAbs(path) {
				path = filepath.Join(root, filepath.FromSlash(e.File))
			}
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(stderr, "areslint:", err)
				return 2
			}
			src[e.File] = data
		}
	}
	plan, err := lint.PlanFixes(diags, src)
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	if !apply {
		fmt.Fprint(stdout, plan.Diff())
	} else if err := plan.Write(root); err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	for _, d := range plan.Skipped {
		fmt.Fprintf(stderr, "areslint: fix skipped (conflicts with an earlier fix): %s\n", d)
	}
	verb := "previewed"
	if apply {
		verb = "applied"
	}
	fmt.Fprintf(stderr, "areslint: %s %d fix(es), %d skipped, %d finding(s) total\n",
		verb, plan.Applied, len(plan.Skipped), len(diags))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
