// Command areslint runs the repository's project-specific static
// analyzers (internal/lint) over the given packages and exits non-zero
// when any invariant is violated:
//
//	go run ./cmd/areslint ./...
//	go run ./cmd/areslint -json ./internal/stats ./internal/core
//	go run ./cmd/areslint -checks detrand,seedarith ./...
//
// Patterns are directories relative to the module root (or absolute);
// `dir/...` walks a subtree, skipping testdata and vendor. Suppress a
// finding in place with `//areslint:ignore <check> <reason>` on the
// offending line or the line above. Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ares-cps/ares/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("areslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	workers := fs.Int("workers", 0, "packages analyzed concurrently (0 = process budget)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: areslint [-json] [-checks c1,c2] [-list] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *checks != "" {
		var bad string
		analyzers, bad = lint.ByName(strings.Split(*checks, ","))
		if bad != "" {
			fmt.Fprintf(stderr, "areslint: unknown check %q (see -list)\n", bad)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "areslint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers, *workers)
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "areslint:", err)
			return 2
		}
	} else {
		if err := lint.WriteText(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "areslint:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "areslint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
