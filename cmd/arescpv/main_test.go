package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/cpv"
)

func runCLI(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "", "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range cpv.IDs() {
		if !strings.Contains(out, id) {
			t.Errorf("listing misses %s", id)
		}
	}
}

func TestShow(t *testing.T) {
	code, out, _ := runCLI(t, "", "-show", "ARES-CPV-001")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rec cpv.Record
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("output is not a record: %v", err)
	}
	if rec.ID != "ARES-CPV-001" {
		t.Errorf("showed %q", rec.ID)
	}
	if code, _, _ := runCLI(t, "", "-show", "NOPE"); code != 1 {
		t.Errorf("unknown record: exit %d, want 1", code)
	}
}

func TestCompile(t *testing.T) {
	code, out, errOut := runCLI(t, "", "-compile", "ARES-CPV-001,ARES-CPV-003", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var spec campaign.Spec
	if err := json.Unmarshal([]byte(out), &spec); err != nil {
		t.Fatalf("output is not a spec: %v", err)
	}
	if len(spec.Sweeps) != 2 || spec.Seed != 7 {
		t.Errorf("unexpected spec: %d sweeps, seed %d", len(spec.Sweeps), spec.Seed)
	}
	if code, _, _ := runCLI(t, "", "-compile", "ARES-CPV-999"); code != 1 {
		t.Errorf("unknown id: exit %d, want 1", code)
	}
}

func TestLint(t *testing.T) {
	good := `[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":["PIDR.INTEG"]}]`
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, errOut := runCLI(t, "", "-lint", path); code != 0 || !strings.Contains(out, "ok: 1") {
		t.Errorf("good doc: exit %d out %q err %q", code, out, errOut)
	}
	// Stdin, with a semantic failure (unknown variable).
	bad := `[{"id":"X-1","name":"x","entry_component":"stabilizer","attack_vector":"rl","goal":"deviation","variables":["NOPE.X"]}]`
	if code, _, errOut := runCLI(t, bad, "-lint", "-"); code != 1 || !strings.Contains(errOut, "unknown state variable") {
		t.Errorf("bad doc: exit %d err %q", code, errOut)
	}
	if code, _, _ := runCLI(t, "", "-lint", filepath.Join(dir, "missing.json")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "", "-list", "-show", "X"); code != 2 {
		t.Errorf("two modes: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, ""); code != 2 {
		t.Errorf("no mode: exit %d, want 2", code)
	}
}
