// Command arescpv works with the declarative CPV catalog: it lists and
// shows the built-in records, lints catalog documents, and prints the
// campaign spec a record set compiles to — without flying anything.
//
// Usage:
//
//	arescpv -list                      print the built-in catalog
//	arescpv -show ID                   print one record as JSON
//	arescpv -compile ID[,ID...]        print the compiled normalized Spec
//	         [-seed S] [-trials N] [-episodes N] [-steps N]
//	arescpv -lint FILE                 parse + validate a catalog document
//	                                   (JSON array of records; "-" = stdin)
//
// Exit status: 0 on success, 1 when lint/validation finds problems, 2 on
// usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/ares-cps/ares/internal/cpv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arescpv", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the built-in catalog")
	show := fs.String("show", "", "print one built-in record as JSON")
	compile := fs.String("compile", "", "compile these record IDs and print the normalized campaign spec")
	lint := fs.String("lint", "", "parse and validate a catalog document (JSON array; \"-\" = stdin)")
	seed := fs.Int64("seed", 42, "campaign base seed for -compile")
	trials := fs.Int("trials", 0, "default trials per cell for -compile (0 = campaign default)")
	episodes := fs.Int("episodes", 0, "RL episodes per job for -compile (0 = core default)")
	steps := fs.Int("steps", 0, "max steps per episode for -compile (0 = core default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	modes := 0
	for _, on := range []bool{*list, *show != "", *compile != "", *lint != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(stderr, "arescpv: need exactly one of -list, -show, -compile, -lint")
		fs.Usage()
		return 2
	}

	switch {
	case *list:
		for _, r := range cpv.Catalog() {
			fmt.Fprintf(stdout, "%-14s %s [%s/%s vs %s]\n",
				r.ID, r.Name, r.AttackVector, r.Goal, strings.Join(r.Defenses, ","))
		}
		return 0

	case *show != "":
		rec, ok := cpv.Get(*show)
		if !ok {
			fmt.Fprintf(stderr, "arescpv: unknown record %q\n", *show)
			return 1
		}
		return printJSON(stdout, stderr, rec)

	case *compile != "":
		var ids []string
		for _, id := range strings.Split(*compile, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		spec, err := cpv.CompileIDs(cpv.Options{
			Name:     "arescpv",
			Seed:     *seed,
			Trials:   *trials,
			Episodes: *episodes,
			MaxSteps: *steps,
		}, ids...)
		if err != nil {
			fmt.Fprintln(stderr, "arescpv:", err)
			return 1
		}
		return printJSON(stdout, stderr, spec)

	default: // -lint
		data, err := readDoc(*lint, stdin)
		if err != nil {
			fmt.Fprintln(stderr, "arescpv:", err)
			return 2
		}
		recs, err := cpv.ParseRecords(data)
		if err != nil {
			fmt.Fprintln(stderr, "arescpv:", err)
			return 1
		}
		bad := 0
		for _, r := range recs {
			if err := cpv.Check(r); err != nil {
				fmt.Fprintln(stderr, "arescpv:", err)
				bad++
			}
		}
		if bad > 0 {
			fmt.Fprintf(stderr, "arescpv: %d of %d records failed\n", bad, len(recs))
			return 1
		}
		fmt.Fprintf(stdout, "ok: %d records\n", len(recs))
		return 0
	}
}

func readDoc(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

func printJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, "arescpv:", err)
		return 2
	}
	return 0
}
