// Command arescamp runs a sharded, parallel, resumable ARES
// vulnerability-assessment campaign: the cross product of missions ×
// target variables × attack goals × defenses × trial seeds, executed on a
// bounded worker pool with one JSON-lines artifact record per job.
//
// Usage:
//
//	arescamp [-missions L] [-vars L] [-goals L] [-attacks L] [-defenses L]
//	         [-trials N] [-seed S] [-episodes N] [-steps N] [-workers N]
//	         [-batch=BOOL] [-cpv ID[,ID...]] [-list-cpvs]
//	         [-out FILE] [-csv DIR] [-q] [-metrics]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// Re-running with the same -out file resumes the campaign: jobs whose keys
// already have an ok record are skipped, so an interrupted fleet picks up
// where it stopped. `arescamp -out run.jsonl -summary` aggregates an
// existing artifact file without running anything. The exit status is
// non-zero when any job in the sweep failed (after the partial summary is
// printed), so CI pipelines fail loudly; -metrics dumps the shared
// process instrument set (the same counters the aresd daemon serves at
// /metrics) to stderr on exit.
//
// -cpv compiles the named built-in CPV catalog records into the campaign
// instead of assembling axes by hand (the axis flags are then rejected, as
// each record carries its own); -list-cpvs prints the catalog and exits.
// Records produced by a catalog-compiled run carry the originating CPV ID,
// and the -summary aggregation reports a per-CPV axis, so results stay
// traceable back to the catalog entry.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/cpv"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arescamp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("arescamp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	missions := fs.String("missions", "line:60", "comma-separated missions (kind:size[:alt])")
	variables := fs.String("vars", "PIDR.INTEG,CMD.Roll", "comma-separated target state variables")
	goals := fs.String("goals", campaign.GoalDeviation, "comma-separated goals (deviation,crash)")
	attacks := fs.String("attacks", campaign.AttackRL, "comma-separated attacks (rl,stealthy)")
	defenses := fs.String("defenses", campaign.DefenseNone, "comma-separated defenses (none,ci,recovery)")
	cpvIDs := fs.String("cpv", "", "compile these CPV catalog record IDs instead of the axis flags")
	listCPVs := fs.Bool("list-cpvs", false, "print the built-in CPV catalog and exit")
	trials := fs.Int("trials", 8, "trial seeds per axis cell")
	seed := fs.Int64("seed", 42, "campaign base seed")
	episodes := fs.Int("episodes", 12, "RL training episodes per job")
	steps := fs.Int("steps", 60, "max steps per episode")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs)")
	batch := fs.Bool("batch", true, "run each cell's trials as one lockstep batched rollout where the axes permit (records are bit-identical either way)")
	out := fs.String("out", "campaign.jsonl", "artifact file (JSON lines); reused for resume")
	csvDir := fs.String("csv", "", "also export the summary as CSV into this directory")
	summaryOnly := fs.Bool("summary", false, "only aggregate the existing -out file; run nothing")
	quiet := fs.Bool("q", false, "suppress per-job progress lines")
	dumpMetrics := fs.Bool("metrics", false, "dump process metrics (Prometheus text) to stderr on exit")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listCPVs {
		for _, r := range cpv.Catalog() {
			fmt.Fprintf(stdout, "%-14s %s [%s/%s vs %s]\n",
				r.ID, r.Name, r.AttackVector, r.Goal, strings.Join(r.Defenses, ","))
		}
		return nil
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	if *dumpMetrics {
		// The same instrument set the assessment daemon serves at
		// /metrics, dumped expvar-style for batch runs.
		defer metrics.Default().WritePrometheus(stderr)
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if !*summaryOnly {
		var spec campaign.Spec
		if *cpvIDs != "" {
			// Catalog mode: each record carries its own axes, so the axis
			// flags must not also be set.
			explicit := make(map[string]bool)
			fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			for _, name := range []string{"missions", "vars", "goals", "attacks", "defenses"} {
				if explicit[name] {
					return fmt.Errorf("-%s cannot be combined with -cpv (each catalog record carries its own axes)", name)
				}
			}
			spec, err = cpv.CompileIDs(cpv.Options{
				Name:     "arescamp",
				Seed:     *seed,
				Trials:   *trials,
				Episodes: *episodes,
				MaxSteps: *steps,
			}, splitList(*cpvIDs)...)
			if err != nil {
				return err
			}
		} else {
			spec = campaign.Spec{
				Name:     "arescamp",
				Seed:     *seed,
				Trials:   *trials,
				Episodes: *episodes,
				MaxSteps: *steps,
			}
			for _, m := range splitList(*missions) {
				ms, err := campaign.ParseMission(m)
				if err != nil {
					return err
				}
				spec.Missions = append(spec.Missions, ms)
			}
			spec.Variables = splitList(*variables)
			spec.Goals = splitList(*goals)
			spec.Attacks = splitList(*attacks)
			spec.Defenses = splitList(*defenses)
		}
		if err := spec.Validate(); err != nil {
			return err
		}

		store, err := campaign.OpenStore(*out)
		if err != nil {
			return err
		}
		defer store.Close()

		// SIGINT/SIGTERM stop new jobs; in-flight jobs finish and are
		// recorded, so the next run with the same -out resumes cleanly.
		ctx, cancel := signal.NotifyContext(context.Background(),
			os.Interrupt, syscall.SIGTERM)
		defer cancel()

		logw := io.Writer(stderr)
		if *quiet {
			logw = io.Discard
		}
		r := &campaign.Runner{Workers: *workers, Log: logw}
		if *batch {
			r.Execute, r.ExecuteGroup = campaign.NewBatchExecutor()
		}
		stats, err := r.Run(ctx, spec, store)
		if err != nil && err != context.Canceled {
			return err
		}
		fmt.Fprintf(stderr,
			"campaign: %d jobs (%d resumed), %d ok, %d errors, %d panics in %.1fs\n",
			stats.Total, stats.Skipped, stats.OK, stats.Errors, stats.Panics,
			stats.Elapsed.Seconds())
		if err == context.Canceled {
			fmt.Fprintf(stderr, "campaign: interrupted — re-run with -out %s to resume\n", *out)
			return nil
		}
		// A sweep with failed jobs must fail the invoking pipeline, but
		// only after the partial summary below is printed.
		if n := stats.Errors + stats.Panics; n > 0 {
			defer func() {
				if retErr == nil {
					retErr = fmt.Errorf("%d of %d jobs failed", n, stats.Total)
				}
			}()
		}
	}

	recs, err := campaign.ReadRecords(*out)
	if err != nil {
		return err
	}
	sum := campaign.Aggregate("arescamp", recs)
	if err := sum.WriteText(stdout); err != nil {
		return err
	}
	if *csvDir != "" {
		return sum.WriteCSV(*csvDir)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
