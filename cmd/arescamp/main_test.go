package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
)

func TestRunMiniCampaignAndResume(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	args := []string{
		"-missions", "line:40", "-vars", "PIDR.INTEG",
		"-trials", "2", "-episodes", "2", "-steps", "6",
		"-workers", "2", "-out", out,
	}
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Campaign arescamp — 2 jobs") {
		t.Errorf("summary missing:\n%s", stdout.String())
	}
	recs, err := campaign.ReadRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("artifact records = %d, want 2", len(recs))
	}

	// Second run against the same -out file must resume, not re-execute.
	stderr.Reset()
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "(2 resumed), 0 ok") {
		t.Errorf("resume not reported:\n%s", stderr.String())
	}
	recs, err = campaign.ReadRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("resume appended records: %d, want 2", len(recs))
	}
}

func TestSummaryOnly(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	st, err := campaign.OpenStore(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(campaign.Record{
		Key: "k", Mission: "m", Variable: "v", Goal: "deviation", Defense: "none",
		Status: campaign.StatusOK, Metrics: &campaign.Metrics{Deviation: 3, Success: true},
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-out", out, "-summary"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "1 jobs") {
		t.Errorf("summary:\n%s", stdout.String())
	}
}

// TestProfileFlags: -cpuprofile/-memprofile write non-empty pprof files
// alongside a mini campaign.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-missions", "line:40", "-vars", "PIDR.INTEG",
		"-trials", "1", "-episodes", "2", "-steps", "6",
		"-out", filepath.Join(dir, "run.jsonl"),
		"-cpuprofile", cpu, "-memprofile", mem, "-q",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var sink bytes.Buffer
	if err := run([]string{"-missions", "loop:9"}, &sink, &sink); err == nil {
		t.Error("bad mission accepted")
	}
	if err := run([]string{"-goals", "teleport", "-out",
		filepath.Join(t.TempDir(), "x.jsonl")}, &sink, &sink); err == nil {
		t.Error("bad goal accepted")
	}
	if err := run([]string{"-summary", "-out", filepath.Join(t.TempDir(), "missing.jsonl")},
		&sink, &sink); !os.IsNotExist(err) {
		t.Errorf("missing artifact file: %v", err)
	}
}

func TestFailedJobsExitNonZero(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	args := []string{
		"-missions", "line:40", "-vars", "NO.SUCH.VAR",
		"-trials", "1", "-episodes", "1", "-steps", "4",
		"-workers", "1", "-out", out, "-q", "-metrics",
	}
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v, want failed-jobs error", err)
	}
	// The partial summary still prints before the failure exit, and the
	// -metrics dump lands on stderr.
	if !strings.Contains(stdout.String(), "Campaign arescamp") {
		t.Errorf("summary missing despite failures:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "ares_campaign_jobs_error_total") {
		t.Errorf("-metrics dump missing:\n%s", stderr.String())
	}
}
