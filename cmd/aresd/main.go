// Command aresd is the networked assessment daemon: it serves the
// internal/serve HTTP API (job queueing with backpressure, singleflight
// dedup of identical specs, LRU result caching, SSE progress, Prometheus
// metrics) backed by the ARES campaign executor.
//
// Daemon mode:
//
//	aresd [-addr :8080] [-store DIR] [-queue N] [-workers N]
//	      [-parallel N] [-cache N] [-drain D]
//
// SIGINT/SIGTERM drains gracefully: the daemon stops accepting, finishes
// in-flight jobs (up to -drain), persists the queue manifest, and a
// restarted daemon with the same -store completes the remainder.
//
// Fleet mode shards campaigns across machines (internal/dist). One
// daemon coordinates; any number of workers join it:
//
//	aresd -coordinator [-addr :8080] [-store DIR] [-lease-ttl D] [-lease-batch N]
//	aresd -worker -join http://coordinator:8080 [-id NAME] [-workers N] [-batch]
//
// The coordinator serves the same submission API as a single-node
// daemon — -submit/-wait point at it unchanged — and drains the same
// way: SIGTERM expires outstanding leases back into the queue manifest.
// A killed worker costs nothing but its lease TTL; the fleet's merged
// artifacts are byte-identical to a local run of the same spec.
//
// Client mode (so CI can exercise the full loop without curl):
//
//	aresd -addr host:port -submit spec.json [-wait] [-timeout D]
//
// -submit POSTs the JSON spec ("-" reads stdin) and prints the job ID;
// with -wait it polls the job until terminal, prints the aggregated
// summary, and exits non-zero if the job failed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/dist"
	"github.com/ares-cps/ares/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "aresd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aresd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (daemon) or daemon address/URL (client)")
	storeDir := fs.String("store", "aresd-store", "artifact + queue-manifest directory")
	queueDepth := fs.Int("queue", 64, "submission queue depth (backpressure beyond this)")
	workers := fs.Int("workers", 2, "concurrent jobs")
	parallel := fs.Int("parallel", 0, "machine-wide parallelism budget shared by running jobs (0 = all CPUs)")
	cacheSize := fs.Int("cache", 128, "result cache entries (LRU)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	submit := fs.String("submit", "", "client mode: POST this spec file (\"-\" = stdin) to -addr")
	wait := fs.Bool("wait", false, "with -submit: poll until the job finishes and print the summary")
	timeout := fs.Duration("timeout", 10*time.Minute, "with -wait: give up after this long")
	coordinator := fs.Bool("coordinator", false, "fleet mode: coordinate -worker daemons instead of executing locally")
	worker := fs.Bool("worker", false, "fleet mode: execute job leases from the -join coordinator")
	join := fs.String("join", "", "worker mode: coordinator address or URL to join")
	workerID := fs.String("id", "", "worker mode: stable worker identity (default host-pid)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "coordinator mode: lease lifetime without a heartbeat")
	leaseBatch := fs.Int("lease-batch", 8, "coordinator mode: max jobs per lease")
	batch := fs.Bool("batch", true, "worker mode: run batchable trial groups on the lockstep batched executor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *coordinator && *worker {
		return errors.New("-coordinator and -worker are mutually exclusive")
	}
	if *submit != "" {
		return clientSubmit(*addr, *submit, *wait, *timeout, stdout, stderr)
	}
	if *worker {
		return workerDaemon(*join, *workerID, *workers, *batch, stderr)
	}
	if *coordinator {
		return coordinatorDaemon(*addr, dist.CoordConfig{
			StoreDir: *storeDir,
			LeaseTTL: *leaseTTL,
			MaxLease: *leaseBatch,
			Log:      stderr,
		}, *drain, stderr)
	}
	return daemon(*addr, serve.Config{
		StoreDir:    *storeDir,
		QueueDepth:  *queueDepth,
		Workers:     *workers,
		Parallelism: *parallel,
		CacheSize:   *cacheSize,
		Log:         stderr,
	}, *drain, stderr)
}

func daemon(addr string, cfg serve.Config, drain time.Duration, stderr io.Writer) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	srv.Start()
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "aresd: listening on %s (store %s, %d workers, queue %d)\n",
			addr, cfg.StoreDir, cfg.Workers, cfg.QueueDepth)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "aresd: draining (up to %s)...\n", drain)
	drainCtx, stop := context.WithTimeout(context.Background(), drain)
	defer stop()
	_ = httpSrv.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "aresd: queue persisted; bye")
	return nil
}

// coordinatorDaemon serves the fleet head: same lifecycle shape as the
// single-node daemon, but shutdown also expires outstanding worker
// leases so their jobs persist to the queue manifest as pending.
func coordinatorDaemon(addr string, cfg dist.CoordConfig, drain time.Duration, stderr io.Writer) error {
	c, err := dist.NewCoordinator(cfg)
	if err != nil {
		return err
	}
	c.Start()
	httpSrv := &http.Server{Addr: addr, Handler: c.Handler()}

	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "aresd: coordinating on %s (store %s, lease ttl %s, batch %d)\n",
			addr, cfg.StoreDir, cfg.LeaseTTL, cfg.MaxLease)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "aresd: coordinator draining (up to %s)...\n", drain)
	drainCtx, stop := context.WithTimeout(context.Background(), drain)
	defer stop()
	_ = httpSrv.Shutdown(drainCtx)
	if err := c.Shutdown(); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "aresd: leases released, queue persisted; bye")
	return nil
}

// workerDaemon joins a coordinator and executes leases until signalled.
func workerDaemon(join, id string, jobs int, batch bool, stderr io.Writer) error {
	if join == "" {
		return errors.New("-worker requires -join")
	}
	cfg := dist.WorkerConfig{
		Coordinator: baseURL(join),
		ID:          id,
		Jobs:        jobs,
		Log:         stderr,
	}
	if batch {
		cfg.Execute, cfg.ExecuteGroup = campaign.NewBatchExecutor()
	} else {
		cfg.Execute = campaign.NewExecutor()
	}
	w, err := dist.NewWorker(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Fprintf(stderr, "aresd: worker %s joining %s (%d jobs, batch=%v)\n",
		w.ID(), cfg.Coordinator, jobs, batch)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "aresd: worker %s stopped\n", w.ID())
	return nil
}

// baseURL normalizes -addr into an http URL.
func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	if strings.HasPrefix(addr, ":") {
		addr = "localhost" + addr
	}
	return "http://" + addr
}

func clientSubmit(addr, specPath string, wait bool, timeout time.Duration, stdout, stderr io.Writer) error {
	var data []byte
	var err error
	if specPath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(specPath)
	}
	if err != nil {
		return err
	}
	base := baseURL(addr)
	client := &http.Client{Timeout: 30 * time.Second}

	st, err := postSpec(client, base, data)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "job %s %s\n", st.ID, st.State)
	if !wait {
		return nil
	}

	deadline := time.Now().Add(timeout)
	for st.State != serve.StateDone && st.State != serve.StateFailed {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %s", st.ID, st.State, timeout)
		}
		time.Sleep(200 * time.Millisecond)
		if st, err = getJSON[serve.JobStatus](client, base+"/v1/jobs/"+st.ID); err != nil {
			return err
		}
	}
	if st.State == serve.StateFailed {
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	res, err := getJSON[serve.Result](client, base+"/v1/results/"+st.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "job %s done\n", st.ID)
	return res.Summary.WriteText(stdout)
}

func postSpec(client *http.Client, base string, body []byte) (serve.JobStatus, error) {
	resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return serve.JobStatus{}, apiError(resp)
	}
	var st serve.JobStatus
	if err := decodeBody(resp.Body, &st); err != nil {
		return serve.JobStatus{}, err
	}
	return st, nil
}

func getJSON[T any](client *http.Client, url string) (T, error) {
	var v T
	resp, err := client.Get(url)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, apiError(resp)
	}
	return v, decodeBody(resp.Body, &v)
}

func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if decodeBody(resp.Body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return errors.New(resp.Status)
}

// maxBodyBytes caps API response bodies the client will decode — the
// client-side mirror of the server's request size limits. Status and
// result documents are a few KB; a megabyte is generous headroom.
const maxBodyBytes = 1 << 20

// decodeBody decodes exactly one JSON document from an API response
// body under the repository's strict-decode convention: size-capped,
// unknown fields rejected, trailing data rejected. Both ends of this
// protocol live in this module, so a field the client does not know is
// a version skew worth failing loudly on, not ignoring.
func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}
