package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/dist"
	"github.com/ares-cps/ares/internal/metrics"
	"github.com/ares-cps/ares/internal/serve"
)

// startDaemon serves an in-process daemon with a fake executor so the
// client mode can be exercised end to end without opening a port.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		StoreDir: t.TempDir(),
		Workers:  1,
		Metrics:  metrics.NewRegistry(),
		Executor: func(_ context.Context, job campaign.Job) (campaign.Metrics, error) {
			return campaign.Metrics{Deviation: 6, Success: true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return ts
}

func TestClientSubmitWait(t *testing.T) {
	ts := startDaemon(t)
	specPath := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"name":"cli","seed":3,"missions":[{"kind":"line","size":40,"alt":10}],"variables":["PIDR.INTEG"],"trials":2,"episodes":1,"max_steps":4}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-submit", specPath, "-wait", "-timeout", "30s"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "done") {
		t.Errorf("output missing completion:\n%s", out)
	}
	if !strings.Contains(out, "Campaign cli — 2 jobs") {
		t.Errorf("output missing summary:\n%s", out)
	}

	// A second submit of the same spec is served from the cache and still
	// prints the summary.
	stdout.Reset()
	if err := run([]string{"-addr", ts.URL, "-submit", specPath, "-wait"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Campaign cli — 2 jobs") {
		t.Errorf("cached output missing summary:\n%s", stdout.String())
	}
}

func TestClientSubmitInvalidSpec(t *testing.T) {
	ts := startDaemon(t)
	specPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(specPath, []byte(`{"goals":["teleport"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{"-addr", ts.URL, "-submit", specPath}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "teleport") {
		t.Fatalf("err = %v, want the daemon's validation error", err)
	}
}

// TestFleetFlagValidation pins the fleet-mode flag contract.
func TestFleetFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-coordinator", "-worker"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-coordinator -worker: err = %v, want mutual-exclusion error", err)
	}
	err = run([]string{"-worker"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-join") {
		t.Errorf("-worker without -join: err = %v, want join error", err)
	}
	err = run([]string{"-worker", "-join", "http://x", "-id", "bad id"}, &stdout, &stderr)
	if err == nil {
		t.Error("-worker with malformed -id accepted")
	}
}

// TestClientAgainstCoordinator proves the unchanged client mode drives a
// fleet: -submit/-wait against a coordinator whose jobs a dist worker
// executes.
func TestClientAgainstCoordinator(t *testing.T) {
	c, err := dist.NewCoordinator(dist.CoordConfig{
		StoreDir: t.TempDir(),
		Metrics:  metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Shutdown()
	})

	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: ts.URL, ID: "cli-w0", Jobs: 1,
		Execute: func(_ context.Context, job campaign.Job) (campaign.Metrics, error) {
			return campaign.Metrics{Deviation: 6, Success: true}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = w.Run(wctx) }()
	t.Cleanup(func() { wcancel(); <-done })

	specPath := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"name":"fleet-cli","seed":3,"missions":[{"kind":"line","size":40,"alt":10}],"variables":["PIDR.INTEG"],"trials":2,"episodes":1,"max_steps":4}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-addr", ts.URL, "-submit", specPath, "-wait", "-timeout", "30s"},
		&stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Campaign fleet-cli — 2 jobs") {
		t.Errorf("output missing fleet summary:\n%s", stdout.String())
	}
}

func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		":8080":                 "http://localhost:8080",
		"10.0.0.1:9":            "http://10.0.0.1:9",
		"http://h:1/":           "http://h:1",
		"https://ares.internal": "https://ares.internal",
		"localhost:8080":        "http://localhost:8080",
	} {
		if got := baseURL(in); got != want {
			t.Errorf("baseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
