// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp id] [-seed S] [-quick] [-csv DIR] [-parallel N]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// With no -exp it runs every experiment in the paper's order. Experiment ids:
// table1, table2, fig3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, ablation.
// With -parallel N the experiments run on an N-worker pool (the campaign
// subsystem's pool); each result is buffered and printed in the paper's
// order, so the output is identical to a sequential run.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ares-cps/ares/internal/campaign"
	"github.com/ares-cps/ares/internal/experiments"
	"github.com/ares-cps/ares/internal/par"
	"github.com/ares-cps/ares/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "", "run only this experiment id (default: all)")
	seed := fs.Int64("seed", 42, "random seed")
	quick := fs.Bool("quick", false, "reduced trial counts and training budgets")
	csvDir := fs.String("csv", "", "also export CSV data into this directory")
	parallel := fs.Int("parallel", 0, "run experiments on this many workers (0 = sequential)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	// SIGINT/SIGTERM cancel the run between experiments (and stop the
	// parallel pool from starting new ones) — the same graceful path the
	// assessment daemon uses, so profiles still flush on the way out.
	ctx, cancel := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer cancel()

	suite := experiments.NewSuite(*seed, *quick)
	if *parallel > 1 {
		// Split one machine-wide concurrency budget between the experiment
		// pool and the Algorithm 1 stages each experiment runs internally,
		// instead of letting every worker open a full-width analysis pool.
		suite.Analysis.Parallelism = par.Inner(0, *parallel)
	}
	runOne := func(id string, runner experiments.Runner, w io.Writer) error {
		start := time.Now()
		res, err := runner(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintf(w, "=== %s (%.1fs) ===\n", id, time.Since(start).Seconds())
		if err := res.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return fmt.Errorf("%s csv: %w", id, err)
			}
		}
		return nil
	}

	if *exp != "" {
		runner, err := experiments.Lookup(*exp)
		if err != nil {
			return err
		}
		return runOne(*exp, runner, stdout)
	}
	registry := experiments.Registry()
	if *parallel > 1 {
		// Suite getters are mutex-guarded, so concurrent experiments
		// share the expensive profile/monitor setup safely; per-entry
		// buffers keep the interleaved output readable and ordered.
		bufs := make([]bytes.Buffer, len(registry))
		err := campaign.ForEach(ctx, *parallel, len(registry), func(i int) error {
			return runOne(registry[i].ID, registry[i].Run, &bufs[i])
		})
		for i := range bufs {
			if _, werr := stdout.Write(bufs[i].Bytes()); werr != nil {
				return werr
			}
		}
		return err
	}
	for _, e := range registry {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := runOne(e.ID, e.Run, stdout); err != nil {
			return err
		}
	}
	return nil
}
