// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp id] [-seed S] [-quick] [-csv DIR]
//
// With no -exp it runs every experiment in the paper's order. Experiment ids:
// table1, table2, fig3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ares-cps/ares/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "", "run only this experiment id (default: all)")
	seed := fs.Int64("seed", 42, "random seed")
	quick := fs.Bool("quick", false, "reduced trial counts and training budgets")
	csvDir := fs.String("csv", "", "also export CSV data into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	suite := experiments.NewSuite(*seed, *quick)
	runOne := func(id string, runner experiments.Runner) error {
		start := time.Now()
		res, err := runner(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n", id, time.Since(start).Seconds())
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			if err := res.WriteCSV(*csvDir); err != nil {
				return fmt.Errorf("%s csv: %w", id, err)
			}
		}
		return nil
	}

	if *exp != "" {
		runner, err := experiments.Lookup(*exp)
		if err != nil {
			return err
		}
		return runOne(*exp, runner)
	}
	for _, e := range experiments.Registry() {
		if err := runOne(e.ID, e.Run); err != nil {
			return err
		}
	}
	return nil
}
