package main

import (
	"path/filepath"
	"testing"
)

func TestExperimentsSingleQuick(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "table1", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV exported: %v", err)
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
