package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExperimentsSingleQuick(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSV exported: %v", err)
	}
}

// TestExperimentsProfileFlags: -cpuprofile/-memprofile write non-empty
// pprof files alongside a normal run.
func TestExperimentsProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-quick",
		"-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExperimentsParallelOrdering runs a pair of cheap experiments on the
// pool and checks the buffered output still appears in registry order.
func TestExperimentsParallelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run skipped in -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	i1 := strings.Index(text, "=== table1")
	i2 := strings.Index(text, "=== table2")
	i3 := strings.Index(text, "=== fig3")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("parallel output out of order: table1@%d table2@%d fig3@%d", i1, i2, i3)
	}
}
