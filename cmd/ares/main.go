// Command ares runs the ARES vulnerability assessment pipeline end to end:
// profile benign missions, run the Algorithm 1 analysis, optionally train an
// RL exploit for a selected target state variable, and print the report.
//
// Usage:
//
//	ares [-missions N] [-seed S] [-exploit VAR] [-episodes N] [-heatmap]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ares-cps/ares"
	"github.com/ares-cps/ares/internal/core"
	"github.com/ares-cps/ares/internal/dataflash"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ares:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ares", flag.ContinueOnError)
	missions := fs.Int("missions", 5, "number of benign profiling missions")
	seed := fs.Int64("seed", 1, "random seed for the whole pipeline")
	exploit := fs.String("exploit", "", "train an RL exploit for this target state variable (e.g. PIDR.INTEG)")
	episodes := fs.Int("episodes", 120, "RL training episodes for -exploit")
	heatmap := fs.Bool("heatmap", false, "print the Figure 5 correlation heat map")
	fromLog := fs.String("fromlog", "", "analyze a recorded dataflash log instead of flying (KSVL-only view)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fromLog != "" {
		return analyzeLog(*fromLog)
	}

	p := ares.NewPipeline(ares.Config{
		Missions: *missions,
		Seed:     *seed,
	})
	fmt.Fprintf(os.Stderr, "profiling %d benign missions…\n", *missions)
	if err := p.Profile(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "running Algorithm 1 analysis…")
	if err := p.Analyze(); err != nil {
		return err
	}
	if err := p.Report().WriteText(os.Stdout); err != nil {
		return err
	}
	if *heatmap {
		if err := p.Roll().HeatmapText(os.Stdout); err != nil {
			return err
		}
	}
	if *exploit != "" {
		fmt.Fprintf(os.Stderr, "training exploit for %s (%d episodes)…\n", *exploit, *episodes)
		res, err := p.TrainDeviationExploit(*exploit, *episodes)
		if err != nil {
			return err
		}
		fmt.Printf("exploit %s: best return %.2f, eval deviation %.2f m, crashed=%v\n",
			res.Variable, res.Train.BestReturn, res.EvalDeviation, res.EvalCrashed)
	}
	return nil
}

// analyzeLog runs the log-only analysis path: extract the dataflash-visible
// variables from a recorded flight and run Algorithm 1 on the roll subset.
// Intermediate controller variables are not in the log — the output notes
// the visibility gap the full pipeline's memory instrumentation closes.
func analyzeLog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := dataflash.Read(f)
	if err != nil {
		return err
	}
	prof, err := core.ProfileFromLog(log, nil)
	if err != nil {
		return err
	}
	fmt.Printf("log: %d variables, %d samples (%.1f Hz)\n",
		len(prof.Names), prof.Samples(), prof.SampleHz)
	_, _, missing := prof.SeriesFor(core.RollESVL())
	roll, err := core.AnalyzeRoll(prof, core.AnalysisOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("log-visible roll variables: %d; memory-only intermediates not in the log: %v\n",
		len(roll.Names), missing)
	fmt.Printf("log-only roll TSVL: %v\n", roll.TSVL)
	return nil
}
