package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/firmware"
)

func TestAresPipelineQuick(t *testing.T) {
	if err := run([]string{"-missions", "1", "-seed", "5", "-heatmap"}); err != nil {
		t.Fatal(err)
	}
}

func TestAresExploitQuick(t *testing.T) {
	if err := run([]string{
		"-missions", "1", "-seed", "6",
		"-exploit", "PIDR.INTEG", "-episodes", "2",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAresFromLog(t *testing.T) {
	// Record a log with logdump's sibling machinery via the firmware.
	path := filepath.Join(t.TempDir(), "f.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := dataflash.NewWriter(f)
	fw, err := firmware.New(firmware.Config{LogWriter: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Takeoff(10); err != nil {
		t.Fatal(err)
	}
	fw.RunFor(10)
	fw.LoadMission(firmware.SquareMission(25, 10))
	if err := fw.StartMission(); err != nil {
		t.Fatal(err)
	}
	fw.RunFor(40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{"-fromlog", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fromlog", "/nonexistent"}); err == nil {
		t.Error("missing log accepted")
	}
}

func TestAresBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
