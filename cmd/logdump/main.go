// Command logdump records and inspects dataflash flight logs.
//
// Usage:
//
//	logdump -record out.bin [-seconds N] [-seed S]   fly a mission and log it
//	logdump -dump in.bin [-filter MSG]               print records
//	logdump -series in.bin -var ATT.Roll             print one time series
//	logdump -summary in.bin                          per-message record counts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/ares-cps/ares/internal/dataflash"
	"github.com/ares-cps/ares/internal/firmware"
	"github.com/ares-cps/ares/internal/sensors"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "logdump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("logdump", flag.ContinueOnError)
	record := fs.String("record", "", "record a simulated flight log to this file")
	seconds := fs.Float64("seconds", 60, "flight duration for -record")
	seed := fs.Int64("seed", 1, "sensor noise seed for -record")
	dump := fs.String("dump", "", "dump records from this log file")
	filter := fs.String("filter", "", "only print this message type with -dump")
	series := fs.String("series", "", "log file for -var extraction")
	variable := fs.String("var", "", "MSG.Field to extract with -series")
	summary := fs.String("summary", "", "print per-message counts for this log file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *record != "":
		return recordFlight(*record, *seconds, *seed)
	case *dump != "":
		return dumpLog(*dump, *filter)
	case *series != "" && *variable != "":
		return dumpSeries(*series, *variable)
	case *summary != "":
		return summarize(*summary)
	default:
		fs.Usage()
		return fmt.Errorf("no action given")
	}
}

func recordFlight(path string, seconds float64, seed int64) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// The log is worthless if the final flush fails, so a close error on
	// this write path must surface; earlier errors win over the close's.
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := dataflash.NewWriter(f)

	sensorCfg := sensors.DefaultConfig()
	sensorCfg.Seed = seed
	fw, err := firmware.New(firmware.Config{Sensors: sensorCfg, LogWriter: w})
	if err != nil {
		return err
	}
	if err := fw.Takeoff(10); err != nil {
		return err
	}
	fw.RunFor(10)
	fw.LoadMission(firmware.SquareMission(25, 10))
	if err := fw.StartMission(); err != nil {
		return err
	}
	fw.RunFor(seconds)
	if crashed, reason := fw.Quad().Crashed(); crashed {
		return fmt.Errorf("flight crashed: %s", reason)
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %.0f s mission to %s\n", seconds, path)
	return nil
}

func openLog(path string) (*dataflash.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataflash.Read(f)
}

func dumpLog(path, filter string) error {
	log, err := openLog(path)
	if err != nil {
		return err
	}
	for _, rec := range log.Records {
		if filter != "" && rec.Name != filter {
			continue
		}
		fmt.Printf("%8.3f %-5s", rec.Time, rec.Name)
		for _, v := range rec.Values {
			fmt.Printf(" %10.4f", v)
		}
		fmt.Println()
	}
	return nil
}

func dumpSeries(path, variable string) error {
	log, err := openLog(path)
	if err != nil {
		return err
	}
	times, values := log.Series(variable)
	if len(values) == 0 {
		return fmt.Errorf("no data for %q", variable)
	}
	for i := range times {
		fmt.Printf("%8.3f %12.6f\n", times[i], values[i])
	}
	return nil
}

func summarize(path string) error {
	log, err := openLog(path)
	if err != nil {
		return err
	}
	counts := make(map[string]int)
	for _, rec := range log.Records {
		counts[rec.Name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	total := 0
	for _, n := range names {
		fmt.Printf("%-6s %6d\n", n, counts[n])
		total += counts[n]
	}
	fmt.Printf("total  %6d records, %d message types\n", total, len(names))
	return nil
}
