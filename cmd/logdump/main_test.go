package main

import (
	"path/filepath"
	"testing"
)

func TestLogdumpRecordAndInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.bin")
	if err := run([]string{"-record", path, "-seconds", "15", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-summary", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-series", path, "-var", "ATT.Roll"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dump", path, "-filter", "MODE"}); err != nil {
		t.Fatal(err)
	}
}

func TestLogdumpErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-summary", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := run([]string{"-record", path, "-seconds", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-series", path, "-var", "NOPE.VAR"}); err == nil {
		t.Error("unknown variable accepted")
	}
}
